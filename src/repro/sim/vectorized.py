"""Lockstep settle farm: N devices' closed-form event loops as array ops.

The scalar :class:`~repro.pll.simulator.PLLTransientSimulator` advances
one device edge-to-edge with closed-form analogue segments.  Stage 0 of
the Table 2 tone sequence — the fixed settling wait — dominates a cold
sweep's cost and touches no measurement hardware, so its event loop is
a pure function of (device physics, stimulus, tone).  This module runs
*many* such settles in lockstep: every live lane holds its scalar loop
state in NumPy arrays (capacitor voltage, VCO phase accumulator, PFD
flip-flops, pending reset, reference-edge cursor) and each iteration
dispatches exactly one event per lane, with the segment algebra applied
as array arithmetic across lanes.

Bit-identity contract
---------------------
A lane that completes in the farm yields a
:class:`~repro.pll.simulator.SimulatorSnapshot` **bit-identical** to
what the scalar engine produces for the same settle.  That holds
because:

* every floating-point expression replicates the scalar engine's
  operation sequence exactly (same association, same operand order) —
  basic IEEE arithmetic is elementwise-identical between Python floats
  and NumPy float64;
* transcendentals go through scalar :func:`math.exp` /
  :func:`math.expm1` per element (NumPy's differ in the last ulp on a
  few percent of arguments);
* reference edges come from the *real* stimulus source, generated once
  per (stimulus, tone) group and shared by every lane in the group;
* any lane the arrays cannot represent faithfully — VCO clamp
  excursion, tuning-curve nonlinearity, pump turn-on delay, an exotic
  filter, a PFD anomaly — is *ejected*: its array state (a valid
  event-boundary snapshot) is materialised and a scalar simulator
  finishes the settle, so correctness never depends on the fast path.

The farm also drains itself: when fewer than ``drain_width`` lanes
remain live, lockstep NumPy overhead loses to the scalar loop, so the
stragglers are handed off the same way ejected lanes are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sequencer import (
    MeasurementScript,
    ToneMeasurement,
    ToneTiming,
)
from repro.errors import MeasurementError, ReproError
from repro.pll.charge_pump import Drive, DriveKind
from repro.pll.hct4046 import HCT4046Config
from repro.pll.loop_filter import PassiveLagLeadFilter, SeriesRCFilter
from repro.pll.pfd import PFDSnapshot, PFDState
from repro.pll.simulator import (
    PLLTransientSimulator,
    RecordLevel,
    SimulatorSnapshot,
)
from repro.pll.vco import VCO
from repro.sim.signals import PulseTrain
from repro.sim.segments import (
    ClampedCubicLaw,
    ConstantSegment,
    ExponentialSegment,
    RampSegment,
)
from repro.stimulus.waveforms import (
    EdgeSourceBase,
    PiecewiseConstantFrequencySource,
)

__all__ = ["MeasureSpec", "SettleLane", "LaneResult",
           "VectorizedLotSimulator"]


class _Unsupported(Exception):
    """Internal: this lane cannot be represented in the array engine."""


# Segment-law kinds, per (physics, drive) row.
_CONST, _RAMP, _EXP = 0, 1, 2

# Event kinds, per lane per iteration.
_END, _REF, _FB, _RESET = 0, 1, 2, 3


def _tuning_law_for(curve) -> Optional[ClampedCubicLaw]:
    """A batchable law replicating ``curve``, or ``None`` if unknown.

    Only the 4046 device model's bound :meth:`tuning_curve` is
    recognised; anything else (a lambda, a subclass override) stays on
    the scalar path.  The caller still probe-verifies the returned law
    against the real curve, so recognition is a fast filter, not the
    correctness guarantee.
    """
    fn = getattr(curve, "__func__", None)
    cfg = getattr(curve, "__self__", None)
    if fn is HCT4046Config.tuning_curve and type(cfg) is HCT4046Config:
        return cfg.tuning_law()
    return None


def _simpson_phase(law: ClampedCubicLaw, segment, dt: float,
                   f_min: float, f_max: float) -> float:
    """Composite-Simpson phase integral over one segment, batched.

    Bit-identical to :meth:`repro.pll.vco.VCO._numeric_phase` for a VCO
    whose ``tuning_curve`` the ``law`` replicates: the 33 node voltages
    come from ``segment.evolve_batch`` (scalar ``math.exp`` per element),
    the tuning law is applied through ``law.evolve_batch`` (masked rail
    clamp), the ``[f_min, f_max]`` clamp through ``np.minimum``/
    ``np.maximum`` (elementwise-identical to scalar ``min``/``max``),
    and the weighted sum accumulates in the scalar node order.
    """
    n = 32
    h = dt / n
    if type(segment) is ConstantSegment:
        # Every node sees the same voltage (the dominant tri-stated
        # state of a locked loop); evaluate the law once but keep the
        # node-by-node accumulation order so the sum stays bit-exact.
        f0 = law.evolve(segment.initial)
        f0 = min(max(f0, f_min), f_max)
        total = f0 + f0
        for i in range(1, n):
            total += (4.0 if i % 2 else 2.0) * f0
        return float(total * h / 3.0)
    offs = np.empty(n + 1, dtype=np.float64)
    for i in range(1, n):
        offs[i] = i * h
    offs[0] = 0.0
    offs[n] = dt
    f = law.evolve_batch(segment.evolve_batch(offs))
    f = np.minimum(np.maximum(f, f_min), f_max)
    total = f[0] + f[n]
    for i in range(1, n):
        total += (4.0 if i % 2 else 2.0) * f[i]
    return float(total * h / 3.0)


def _pcw_edge_train(source, t_end: float) -> Optional[List[float]]:
    """Inline edge generation for a piecewise-constant-frequency source.

    A straight-line transcription of
    :meth:`~repro.stimulus.waveforms.EdgeSourceBase.next_edge` with the
    phase/frequency laws of
    :class:`~repro.stimulus.waveforms.PiecewiseConstantFrequencySource`
    unrolled into locals (same expressions, same operation order, same
    solver iteration), producing bit-identical edge times several times
    faster than the generic method-dispatch path.  Returns ``None``
    whenever the source is not the exact expected type and state, or any
    condition the generic path would treat as an error arises — the
    caller then falls back to pulling edges from the real source.
    """
    if type(source) is not PiecewiseConstantFrequencySource:
        return None
    if source._k != 0 or source._t_last != source.start_time:
        return None
    start = source.start_time
    sched = source.schedule
    f0 = sched[0][0]
    cyc = source._cycle
    ppc = source._phase_per_cycle
    bounds = source._bounds
    n_seg = len(sched)
    t0s = [b[0] for b in bounds[:-1]]
    p0s = [b[1] for b in bounds[:-1]]
    t1s = [b[0] for b in bounds[1:]]
    fs = [f for f, _d in sched]
    floor = math.floor
    seg_range = range(n_seg)

    def phase_at(t):
        rel = t - start
        if rel <= 0.0:
            return rel * f0
        cycles = floor(rel / cyc)
        frac_t = rel - cycles * cyc
        for i in seg_range:
            if frac_t <= t1s[i]:
                return (cycles * ppc + p0s[i]) + fs[i] * (frac_t - t0s[i])
        return (cycles * ppc + ppc) + f0 * 0.0

    def freq_at(t):
        rel = t - start
        if rel <= 0.0:
            return f0
        frac_t = rel - floor(rel / cyc) * cyc
        for i in seg_range:
            if frac_t <= t1s[i]:
                return fs[i]
        return f0

    edges: List[float] = []
    t_last = start
    k = 0
    while True:
        k += 1
        target = float(k)
        lo = t_last
        f_lo = freq_at(lo)
        if f_lo <= 0.0:
            return None
        hi = lo + 1.5 / f_lo
        for _ in range(64):
            if phase_at(hi) >= target:
                break
            lo = hi
            hi = lo + 1.5 / max(freq_at(lo), 1e-12)
        else:
            return None
        # solve_increasing(phase_at, target, lo, hi, derivative=freq_at)
        f_lo_b = phase_at(lo) - target
        f_hi_b = phase_at(hi) - target
        if f_lo_b > 0.0 or f_hi_b < 0.0:
            return None
        if f_lo_b == 0.0:
            t_edge = lo
        elif f_hi_b == 0.0:
            t_edge = hi
        else:
            x = 0.5 * (lo + hi)
            t_edge = None
            for _ in range(200):
                if hi - lo <= 1e-13:
                    t_edge = 0.5 * (lo + hi)
                    break
                f_x = phase_at(x) - target
                if f_x == 0.0:
                    t_edge = x
                    break
                if f_x < 0.0:
                    lo = x
                else:
                    hi = x
                x_next = None
                d = freq_at(x)
                if d > 0.0:
                    candidate = x - f_x / d
                    if lo < candidate < hi:
                        x_next = candidate
                if x_next is None:
                    x_next = 0.5 * (lo + hi)
                x = x_next
            if t_edge is None:
                return None
        if t_edge <= t_last and k > 1:
            return None
        t_last = t_edge
        if not edges and t_edge < 0.0:
            return None
        edges.append(t_edge)
        if t_edge > t_end:
            return edges


def _solve_fb_crossing(kind, out_v, o_asym, tau, slope, half,
                       base_hz, gain, f_center, v_center,
                       f_min, f_max, v_lo, v_hi, need, dt_h):
    """Feedback-edge crossing time for one linear-VCO ramp/exp lane.

    A bit-exact transcription of ``VCO.time_to_phase``'s reachability
    guard plus ``solve_increasing``'s safeguarded Newton iteration for
    the unclamped single-piece case — the same inlined solver the
    per-lane settle kernel carries, shared by the lockstep steppers so
    their per-lane solving loops skip the generic path's segment
    objects and closure allocations.  Every floating-point expression
    replicates the scalar operand order exactly.

    Returns ``(dt_fb, eject)``: ``dt_fb`` is ``None`` when the target
    phase is not reached inside ``[0, dt_h]``; ``eject`` is ``True``
    when the window leaves the VCO clamp band mid-solve (the scalar
    engine subdivides there; the farm hands the lane off instead) or
    the iteration budget is exhausted (the scalar engine raises).
    """
    exp_ = math.exp
    expm1_ = math.expm1
    gap0 = out_v - o_asym
    gk = gap0 * tau
    # pa(dt_h): time_to_phase's bracketing guard.
    if kind == _EXP:
        x = -dt_h / tau
        v1 = o_asym + gap0 * exp_(x)
        va, vb = (v1, out_v) if v1 < out_v else (out_v, v1)
        if not (v_lo <= va and vb <= v_hi):
            return None, True
        pa_hi = base_hz * dt_h + gain * (o_asym * dt_h + gk * -expm1_(x))
    else:  # _RAMP
        v1 = out_v + slope * dt_h
        va, vb = (v1, out_v) if v1 < out_v else (out_v, v1)
        if not (v_lo <= va and vb <= v_hi):
            return None, True
        pa_hi = base_hz * dt_h + gain * (out_v * dt_h + (half * dt_h) * dt_h)
    if pa_hi < need:
        return None, False
    # solve_increasing(pa, need, 0.0, dt_h): pa(0) == 0 so the lower
    # bracket check never trips (f_lo = -need < 0).
    if pa_hi == need:
        return dt_h, False
    lo = 0.0
    hi = dt_h
    x_s = 0.5 * (lo + hi)
    for _ in range(200):
        if hi - lo <= 1e-13:
            return 0.5 * (lo + hi), False
        if kind == _EXP:
            x = -x_s / tau
            v1 = o_asym + gap0 * exp_(x)
            va, vb = (v1, out_v) if v1 < out_v else (out_v, v1)
            if not (v_lo <= va and vb <= v_hi):
                return None, True
            pa_x = base_hz * x_s + gain * (o_asym * x_s + gk * -expm1_(x))
        else:
            v1 = out_v + slope * x_s
            va, vb = (v1, out_v) if v1 < out_v else (out_v, v1)
            if not (v_lo <= va and vb <= v_hi):
                return None, True
            pa_x = base_hz * x_s + gain * (out_v * x_s + (half * x_s) * x_s)
        f_x = pa_x - need
        if f_x == 0.0:
            return x_s, False
        if f_x < 0.0:
            lo = x_s
        else:
            hi = x_s
        # Newton candidate off the segment's instantaneous frequency.
        if kind == _EXP:
            v_d = o_asym + gap0 * exp_(-x_s / tau)
        else:
            v_d = out_v + slope * x_s
        f_d = f_center + gain * (v_d - v_center)
        f_d = min(max(f_d, f_min), f_max)
        x_next = None
        if f_d > 0.0:
            candidate = x_s - f_x / f_d
            if lo < candidate < hi:
                x_next = candidate
        if x_next is None:
            x_next = 0.5 * (lo + hi)
        x_s = x_next
    return None, True  # budget exhausted: scalar raises ConvergenceError


@dataclass(frozen=True)
class MeasureSpec:
    """Stage 1–4 measurement request riding on a :class:`SettleLane`.

    ``config`` is the :class:`~repro.core.architecture.BISTConfig` whose
    counters/detector the scalar sequencer would use; ``arm_index`` the
    modulation-peak index at which the phase counter arms (the fixed
    settle policy's ``settle_cycles``).
    """

    config: object
    arm_index: int
    max_wait_cycles: float = 3.0


@dataclass(frozen=True)
class SettleLane:
    """One settle job: device × stimulus × tone, up to ``settle_end``.

    ``measure`` asks the farm to carry the lane through Table 2 stages
    1–4 after the settle; ``presettled`` skips stage 0 entirely and
    enters the measurement phase from a previously-settled snapshot
    (the warm-cache hit of a lane whose *measurement* is still cold).
    """

    pll: object
    stimulus: object
    f_mod: float
    settle_end: float
    record: RecordLevel = RecordLevel.COUNTERS
    measure: Optional[MeasureSpec] = None
    presettled: Optional[SimulatorSnapshot] = None


@dataclass
class LaneResult:
    """Outcome of one lane.

    ``mode`` is ``"vector"`` (completed in the farm), ``"drained"``
    (lockstep start, per-lane kernel finish), ``"ejected"`` (left the
    supported envelope mid-flight, scalar finish), ``"scalar"`` (never entered
    the farm; full scalar settle) or ``"warm"`` (stage 0 skipped — the
    lane entered presettled).  ``snapshot`` is ``None`` when the
    scalar path raised — the caller should leave that lane cold so the
    orchestrating sweep reproduces the identical error itself.
    ``nonlinear`` marks lanes whose device carries a recognised
    nonlinear (4046-style) VCO tuning curve.  ``measurement`` is the
    farm-completed stage 1–4 :class:`~repro.core.sequencer.
    ToneMeasurement` when the lane carried a :class:`MeasureSpec` and
    the measurement phase finished it in-array; ``None`` means the
    orchestrating sweep measures scalar from ``snapshot``.
    """

    snapshot: Optional[SimulatorSnapshot]
    mode: str
    error: Optional[str] = None
    nonlinear: bool = False
    measurement: Optional[ToneMeasurement] = None


@dataclass
class _LawRow:
    """Replicated segment laws for one (filter, drive) pair.

    ``kind`` selects the closed form; the coefficients reproduce the
    filter's ``segment_pair`` output bit-for-bit (verified at build
    time against the real filter at a probe voltage).
    """

    kind: int
    asym: float = 0.0      # state-law asymptote (exp)
    tau: float = 1.0       # state/output time constant (exp)
    slope: float = 0.0     # state/output slope (ramp)
    half_slope: float = 0.0
    o_a: float = 1.0       # output initial = o_a * vc + o_b  (exp)
    o_b: float = 0.0
    o_asym: float = 0.0    # output-law asymptote (exp)
    o_off: float = 0.0     # output initial = vc + o_off      (ramp)


def _build_law(filt, drive: Drive) -> _LawRow:
    """Replicate the loop filter's segment formulas for one drive."""
    if type(filt) is PassiveLagLeadFilter:
        r_total = drive.source_resistance + filt.r1 + filt.r2
        r_out = filt.r2
    elif type(filt) is SeriesRCFilter:
        r_total = drive.source_resistance + filt.r
        r_out = filt.r
    else:
        raise _Unsupported(f"filter {type(filt).__name__}")
    r_l = filt.leak_resistance
    leaky = math.isfinite(r_l)
    if drive.kind is DriveKind.VOLTAGE:
        if r_total <= 0.0:
            raise _Unsupported("voltage drive into zero series resistance")
        if leaky:
            tau = filt.c * r_total * r_l / (r_total + r_l)
            asym = drive.value * r_l / (r_total + r_l)
        else:
            tau = filt.c * r_total
            asym = drive.value
        k = r_out / r_total
        return _LawRow(
            kind=_EXP, asym=asym, tau=tau,
            o_a=1.0 - k, o_b=k * drive.value,
            o_asym=(1.0 - k) * asym + k * drive.value,
        )
    if drive.kind is DriveKind.CURRENT:
        o_off = drive.value * r_out
        if leaky:
            asym = drive.value * r_l
            return _LawRow(
                kind=_EXP, asym=asym, tau=r_l * filt.c,
                o_a=1.0, o_b=o_off, o_asym=asym + o_off,
            )
        slope = drive.value / filt.c
        return _LawRow(
            kind=_RAMP, slope=slope, half_slope=0.5 * slope, o_off=o_off,
        )
    # HIGH_Z
    if leaky:
        return _LawRow(kind=_EXP, asym=0.0, tau=r_l * filt.c,
                       o_a=1.0, o_b=0.0, o_asym=0.0)
    return _LawRow(kind=_CONST)


def _verify_law(filt, drive: Drive, row: _LawRow, probe_vc: float) -> None:
    """Cross-check a replicated law against the real filter.

    Guards the bit-identity contract against future filter changes: a
    mismatch demotes the physics to the scalar path instead of
    producing silently-wrong fast-path results.
    """
    out, state = filt.segment_pair(probe_vc, drive)
    if row.kind == _CONST:
        ok = (type(state).__name__ == "ConstantSegment"
              and state.initial == probe_vc and out is state)
    elif row.kind == _RAMP:
        ok = (isinstance(state, RampSegment)
              and isinstance(out, RampSegment)
              and state.initial == probe_vc
              and state.slope == row.slope
              and out.slope == row.slope
              and out.initial == probe_vc + row.o_off)
    else:
        ok = (isinstance(state, ExponentialSegment)
              and isinstance(out, ExponentialSegment)
              and state.initial == probe_vc
              and state.asymptote == row.asym
              and state.tau == row.tau
              and out.tau == row.tau
              and out.asymptote == row.o_asym
              and out.initial == row.o_a * probe_vc + row.o_b)
    if not ok:
        raise _Unsupported(
            f"filter {type(filt).__name__} law mismatch under "
            f"{drive.kind.name} drive"
        )


class _PhysicsTable:
    """Per-device constants: drives, segment laws, VCO line, divider."""

    def __init__(self, pll, probe_vc: float):
        vco = pll.vco
        pump = pll.pump
        filt = pll.loop_filter
        if type(vco) is not VCO:
            raise _Unsupported("non-standard VCO")
        self.nonlinear = False
        self.law: Optional[ClampedCubicLaw] = None
        if vco.tuning_curve is not None:
            law = _tuning_law_for(vco.tuning_curve)
            if law is None:
                raise _Unsupported("unrecognised nonlinear VCO tuning curve")
            # Probe-verify the replicated law against the real curve at
            # the operating point, the rails, beyond the rails and
            # mid-rail: a mismatch (a future model change) demotes the
            # lane to the scalar path instead of silently diverging.
            for v in (probe_vc, 0.0, law.v_rail, law.v_center,
                      -0.5 * law.v_rail, 1.5 * law.v_rail):
                if law.evolve(v) != vco.tuning_curve(v):
                    raise _Unsupported("nonlinear tuning law mismatch")
            self.nonlinear = True
            self.law = law
        if float(getattr(pump, "turn_on_delay", 0.0)) != 0.0:
            raise _Unsupported("charge pump with turn-on delay")
        try:
            self.base_hz = vco._base_hz
            self.v_lo = vco._v_lo
            self.v_hi = vco._v_hi
        except AttributeError:
            raise _Unsupported("VCO without precomputed clamp window")
        self.pll = pll
        self.vco = vco
        self.gain = vco.gain_hz_per_v
        self.f_center = vco.f_center
        self.v_center = vco.v_center
        self.f_min = vco.f_min
        self.f_max = vco.f_max
        self.nf = float(pll.n)
        self.reset_delay = float(pll.pfd_reset_delay)

        self.drives: List[Drive] = []
        self.s_to_drive = [
            self._intern(pump.drive_for_state(PFDState(up=up, dn=dn)))
            for up, dn in ((False, False), (True, False),
                           (False, True), (True, True))
        ]
        self.idle_idx = self._intern(pump.idle_drive())
        self.laws = [_build_law(filt, d) for d in self.drives]
        for drive, row in zip(self.drives, self.laws):
            _verify_law(filt, drive, row, probe_vc)

    def _intern(self, drive: Drive) -> int:
        for i, d in enumerate(self.drives):
            if d is drive:
                return i
        self.drives.append(drive)
        return len(self.drives) - 1


@dataclass
class _EdgeGroup:
    """Shared reference-edge stream for one (stimulus, tone) family."""

    edges: np.ndarray


class VectorizedLotSimulator:
    """Advance N settle lanes in lockstep; see the module docstring.

    Parameters
    ----------
    lanes:
        The settle jobs; lanes with equal (stimulus cache key, tone)
        share one generated reference-edge stream.
    drain_width:
        When at most this many lanes remain live in *lockstep*, they
        leave it for per-lane settle kernels; measurement lanes
        thinning past it hand their tails to the scalar sequencer.
    measure_width:
        Minimum number of measuring lanes before the measurement
        phase (batched stages 1–4) switches on.  Below it the farm
        settles on the per-lane kernels and leaves measurement to the
        scalar sequencer — the lockstep measurement loop's array
        overhead needs width to amortise, and keeping narrow farms in
        lockstep just to measure costs more than the batch saves
        (a 13-tone single-device sweep is ~1.5x *slower* measured
        in-farm).  ``None`` derives ``3 * drain_width``; ``0`` always
        measures.
    lockstep_width:
        The lockstep/kernel crossover, applied symmetrically.  Farms
        narrower than this run each lane through the per-lane settle
        kernel (:meth:`_kernel_settle`) — a specialised scalar
        transcription of the event loop that beats both the lockstep
        arrays (whose per-iteration overhead needs many lanes to
        amortise) and the general simulator (whose per-event object
        machinery it peels away).  Farms at least this wide use the
        lockstep arrays — and once retirements thin the live set back
        below the crossover, the stragglers finish on the kernel too
        (mode ``"drained"``).  ``0`` forces lockstep for any width.
    """

    def __init__(self, lanes: Sequence[SettleLane], drain_width: int = 8,
                 lockstep_width: int = 64,
                 measure_width: Optional[int] = None):
        self.lanes = list(lanes)
        self.drain_width = max(0, int(drain_width))
        self.lockstep_width = max(0, int(lockstep_width))
        self.measure_width = (
            3 * self.drain_width if measure_width is None
            else max(0, int(measure_width))
        )
        self.stats = {"vector": 0, "drained": 0, "ejected": 0, "scalar": 0,
                      "failed": 0, "nonlinear": 0, "warm": 0,
                      "measured": 0, "measure_ejected": 0,
                      "measure_failed": 0}
        #: Wall-clock split of the farm run: stage 0 (settle) vs the
        #: measurement phase's stages 1–3 (monitor) and 4 (measure).
        self.wall_settle_s = 0.0
        self.wall_monitor_s = 0.0
        self.wall_measure_s = 0.0
        # Stage 1–4 batching pays only when enough measuring lanes run
        # concurrently; below the measure width the scalar sequencer
        # wins (and the settle phase keeps its kernel crossover).
        n_meas = sum(1 for lane in self.lanes if lane.measure is not None)
        self._meas_enabled = n_meas > self.measure_width
        self._results: List[Optional[LaneResult]] = [None] * len(self.lanes)
        self._vec: List[int] = []          # lane positions in the farm
        self._fallback: List[int] = []     # lane positions settled scalar
        self._prepare()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        tables: Dict[int, _PhysicsTable] = {}
        groups: Dict[Tuple, _EdgeGroup] = {}
        group_end: Dict[Tuple, float] = {}
        group_lanes: Dict[Tuple, List[int]] = {}

        candidates: List[Tuple[int, _PhysicsTable, Tuple]] = []
        for pos, lane in enumerate(self.lanes):
            try:
                key = self._group_key(lane)
                table = tables.get(id(lane.pll))
                if table is None:
                    probe = lane.pll.loop_filter.state_for_output(
                        lane.pll.locked_control_voltage()
                    )
                    table = _PhysicsTable(lane.pll, probe)
                    tables[id(lane.pll)] = table
            except (_Unsupported, ReproError, AttributeError, TypeError):
                self._fallback.append(pos)
                continue
            candidates.append((pos, table, key))
            end = lane.settle_end
            if (self._meas_enabled and lane.measure is not None
                    and not table.nonlinear):
                end = max(end, self._measure_horizon(lane))
            group_end[key] = max(group_end.get(key, 0.0), end)
            group_lanes.setdefault(key, []).append(pos)

        supported: List[Tuple[int, _PhysicsTable, _EdgeGroup]] = []
        for pos, table, key in candidates:
            if key not in groups:
                group = self._generate_edges(self.lanes[pos], group_end[key])
                if group is None:
                    for p in group_lanes[key]:
                        self._fallback.append(p)
                    groups[key] = None  # type: ignore[assignment]
                else:
                    groups[key] = group
            group = groups[key]
            if group is None:
                continue
            supported.append((pos, table, group))
        self._build_arrays(supported)

    def _measure_horizon(self, lane: SettleLane) -> float:
        """Edge-train horizon covering stages 1–4 for one lane.

        An estimate, not a bound: the peak-watch deadline, the two
        reference-period flush, and a generous multiple of the
        reciprocal-count window.  A lane that outruns it hits the
        edge-exhaustion eject in :meth:`_step_measure` and finishes on
        the scalar path — lossless, merely slower.
        """
        spec = lane.measure
        try:
            pll = lane.pll
            t_mod = 1.0 / lane.f_mod
            t_arm = lane.stimulus.modulation_peak_time(
                lane.f_mod, start_time=0.0, index=spec.arm_index
            )
            deadline = t_arm + spec.max_wait_cycles * t_mod
            periods = spec.config.frequency_count_periods
            count = 4.0 * (periods + 8) * pll.n / pll.f_out_nominal
            return deadline + 2.0 / pll.f_ref + count
        except Exception:  # noqa: BLE001 - estimate only; eject covers
            return lane.settle_end

    def _group_key(self, lane: SettleLane) -> Tuple:
        stim = lane.stimulus
        cache_key = stim.cache_key()  # AttributeError -> unsupported
        source = stim.make_source(lane.f_mod, 0.0)
        if not isinstance(source, EdgeSourceBase):
            raise _Unsupported("source is not a plain edge source")
        if (type(source).snapshot_state is not EdgeSourceBase.snapshot_state
                or type(source).restore_state
                is not EdgeSourceBase.restore_state):
            raise _Unsupported("source overrides its snapshot protocol")
        return (cache_key, float(lane.f_mod))

    def _generate_edges(self, lane: SettleLane,
                        t_end: float) -> Optional[_EdgeGroup]:
        """Pull the source's edge train out to just past ``t_end``.

        Piecewise-constant sources (the multitone FSK stimulus) go
        through the inlined transcription :func:`_pcw_edge_train`; its
        first edges are cross-checked against the real generator at
        runtime before being trusted.  Everything else — and any bail —
        pulls every edge from the real source.
        """
        try:
            source = lane.stimulus.make_source(lane.f_mod, 0.0)
            fast = _pcw_edge_train(source, t_end)
            if fast:
                ok = True
                for i in range(min(2, len(fast))):
                    if source.next_edge() != fast[i]:
                        ok = False
                        break
                if ok:
                    return _EdgeGroup(np.asarray(fast, dtype=np.float64))
                source = lane.stimulus.make_source(lane.f_mod, 0.0)
            edges = [source.next_edge()]
            if edges[0] < 0.0:
                return None  # the scalar engine rejects this identically
            while edges[-1] <= t_end:
                nxt = source.next_edge()
                if nxt <= edges[-1]:
                    return None
                edges.append(nxt)
        except ReproError:
            return None
        return _EdgeGroup(np.asarray(edges, dtype=np.float64))

    def _build_arrays(
        self,
        supported: List[Tuple[int, _PhysicsTable, _EdgeGroup]],
    ) -> None:
        n = len(supported)
        self._vec = [pos for pos, __, __ in supported]
        self._tables = [table for __, table, __ in supported]
        self._edges = [group.edges for __, __, group in supported]

        # Flat law tables: one row per (physics, drive); a lane's
        # current row is its physics offset plus its applied-drive
        # index.  Keeping them flat lets mixed-physics lots share the
        # same gather-based inner loop.
        self._row_base = np.zeros(n, dtype=np.int64)
        rows: List[_LawRow] = []
        offsets: Dict[int, int] = {}
        for i, table in enumerate(self._tables):
            off = offsets.get(id(table))
            if off is None:
                off = len(rows)
                offsets[id(table)] = off
                rows.extend(table.laws)
            self._row_base[i] = off
        self._law_kind = np.array([r.kind for r in rows], dtype=np.int64)
        self._law_asym = np.array([r.asym for r in rows])
        self._law_tau = np.array([r.tau for r in rows])
        self._law_slope = np.array([r.slope for r in rows])
        self._law_half = np.array([r.half_slope for r in rows])
        self._law_oa = np.array([r.o_a for r in rows])
        self._law_ob = np.array([r.o_b for r in rows])
        self._law_oasym = np.array([r.o_asym for r in rows])
        self._law_ooff = np.array([r.o_off for r in rows])

        def per_lane(getter):
            return np.array([getter(t) for t in self._tables])

        self._nonlin = np.array(
            [t.nonlinear for t in self._tables], dtype=bool
        ) if n else np.zeros(0, dtype=bool)
        self._base_hz = per_lane(lambda t: t.base_hz)
        self._gain = per_lane(lambda t: t.gain)
        self._v_lo = per_lane(lambda t: t.v_lo)
        self._v_hi = per_lane(lambda t: t.v_hi)
        self._f_center = per_lane(lambda t: t.f_center)
        self._v_center = per_lane(lambda t: t.v_center)
        self._f_min = per_lane(lambda t: t.f_min)
        self._f_max = per_lane(lambda t: t.f_max)
        self._nf = per_lane(lambda t: t.nf)
        self._rdelay = per_lane(lambda t: t.reset_delay)
        self._settle_end = np.array(
            [self.lanes[pos].settle_end for pos in self._vec]
        )

        # Mutable lane state — the scalar simulator's fields, columnar.
        nan = float("nan")
        self._t = np.zeros(n)
        self._vc = np.array([
            self.lanes[pos].pll.loop_filter.state_for_output(
                self.lanes[pos].pll.locked_control_voltage()
            )
            for pos in self._vec
        ]) if n else np.zeros(0)
        self._phase = np.zeros(n)
        self._fbt = self._nf.copy() if n else np.zeros(0)
        self._j = np.zeros(n, dtype=np.int64)
        self._tref = np.array([e[0] for e in self._edges]) if n \
            else np.zeros(0)
        self._up = np.zeros(n, dtype=bool)
        self._dn = np.zeros(n, dtype=bool)
        self._levt = np.full(n, nan)
        self._pres = np.full(n, nan)
        self._upr = np.full(n, nan)
        self._dnr = np.full(n, nan)
        self._drive = np.array(
            [t.idle_idx for t in self._tables], dtype=np.int64
        ) if n else np.zeros(0, dtype=np.int64)
        self._events = np.zeros(n, dtype=np.int64)
        self._active = np.ones(n, dtype=bool)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> List[LaneResult]:
        """Settle every lane; returns one :class:`LaneResult` per lane."""
        wall0 = perf_counter()
        for pos in self._fallback:
            self._results[pos] = self._scalar_settle(self.lanes[pos])
        # Presettled lanes skip stage 0: their stored snapshot becomes
        # the settle result directly, and the measurement phase below
        # reloads it exactly as it reloads farm-settled lanes.
        for i, pos in enumerate(self._vec):
            snap = self.lanes[pos].presettled
            if snap is not None:
                self._active[i] = False
                self._results[pos] = LaneResult(
                    snapshot=snap, mode="warm",
                    nonlinear=self._tables[i].nonlinear,
                )
        if self._vec:
            self._run_farm()
        self.wall_settle_s += perf_counter() - wall0
        self._run_measure()
        out = []
        for pos, result in enumerate(self._results):
            assert result is not None, f"lane {pos} never resolved"
            self.stats[result.mode] += 1
            if result.snapshot is None:
                self.stats["failed"] += 1
            if result.nonlinear:
                self.stats["nonlinear"] += 1
            out.append(result)
        return out

    def _run_farm(self) -> None:
        """Drive every still-active farm lane to a result.

        Split out of :meth:`run` so tiered subclasses can settle their
        own lanes first and let this method sweep up whatever remains
        active — the base behaviour (kernel for narrow/nonlinear farms,
        lockstep arrays for wide ones, scalar drain for stragglers) is
        unchanged.
        """
        idx = np.flatnonzero(self._active)
        n = idx.size
        if n == 0:
            return
        if n <= self.drain_width:
            # Too narrow for the lockstep arrays: per-lane kernels.
            for i in idx.tolist():
                self._kernel_settle(i, mode="drained")
            return
        if self.lockstep_width:
            # Nonlinear lanes always take the per-lane kernel: their
            # Simpson quadrature vectorises across the 33 quadrature
            # nodes, not across lanes, so lockstep buys them nothing.
            for i in idx.tolist():
                if self._nonlin[i]:
                    self._kernel_settle(i)
            linear = np.flatnonzero(self._active)
            if linear.size < self.lockstep_width:
                # Narrow farm: the kernel beats the lockstep arrays.
                for i in linear.tolist():
                    self._kernel_settle(i)
        while True:
            idx = np.flatnonzero(self._active)
            if idx.size == 0:
                break
            if idx.size <= self.drain_width or (
                    self.lockstep_width
                    and idx.size < self.lockstep_width):
                # The crossover is symmetric: lockstep pays only while
                # at least lockstep_width lanes step together, so once
                # retirements thin the farm below it the stragglers
                # leave lockstep and finish on the per-lane kernel —
                # bit-identical, without the per-iteration array
                # overhead or the scalar engine's per-event machinery.
                for i in idx.tolist():
                    self._kernel_settle(i, mode="drained")
                break
            self._step(idx)

    # ------------------------------------------------------------------
    # one lockstep iteration: one event per live lane
    # ------------------------------------------------------------------
    def _step(self, idx: np.ndarray) -> None:
        t = self._t[idx]
        vc = self._vc[idx]
        rows = self._row_base[idx] + self._drive[idx]
        kindlaw = self._law_kind[rows]
        nl = self._nonlin[idx]
        pres = self._pres[idx]
        has_res = ~np.isnan(pres)

        # --- event selection (mirrors _next_event) -------------------
        best_t = self._settle_end[idx].copy()
        kind = np.full(idx.size, _END, dtype=np.int64)

        tref = self._tref[idx]
        m = tref <= best_t
        best_t[m] = tref[m]
        kind[m] = _REF

        horizon = best_t.copy()
        m = has_res & (pres < horizon)
        horizon[m] = pres[m]
        dt_h = horizon - t

        eject = dt_h < 0.0

        need = self._fbt[idx] - self._phase[idx]
        due = need <= 1e-9
        eject |= due & (need < -1e-6)
        m = due & (t <= best_t)
        best_t[m] = t[m]
        kind[m] = _FB

        out_v = np.where(
            kindlaw == _EXP,
            self._law_oa[rows] * vc + self._law_ob[rows],
            np.where(kindlaw == _RAMP, vc + self._law_ooff[rows], vc),
        )
        solving = ~due & (dt_h > 0.0)
        # The one-division constant-law fast path mirrors the linear
        # VCO's; a nonlinear VCO has no such inverse, so its lanes go
        # through the generic per-lane solve even under constant drive.
        m = solving & (kindlaw == _CONST) & ~nl
        if m.any():
            f = self._f_center[idx] + self._gain[idx] * (
                out_v - self._v_center[idx]
            )
            f = np.minimum(np.maximum(f, self._f_min[idx]),
                           self._f_max[idx])
            dt_fb = need / f
            cand = t + dt_fb
            hit = m & (dt_fb <= dt_h) & (cand <= best_t)
            best_t[hit] = cand[hit]
            kind[hit] = _FB
        for i in np.flatnonzero(solving & ((kindlaw != _CONST) | nl)).tolist():
            row = rows[i]
            table = self._tables[idx[i]]
            if nl[i]:
                # Nonlinear VCO: the generic Simpson-backed solver.
                if kindlaw[i] == _RAMP:
                    seg = RampSegment(float(out_v[i]),
                                      float(self._law_slope[row]))
                elif kindlaw[i] == _EXP:
                    seg = ExponentialSegment(float(out_v[i]),
                                             float(self._law_oasym[row]),
                                             float(self._law_tau[row]))
                else:
                    seg = ConstantSegment(float(out_v[i]))
                dt_fb = table.vco.time_to_phase(seg, float(need[i]),
                                                float(dt_h[i]))
            else:
                dt_fb, ej = _solve_fb_crossing(
                    int(kindlaw[i]), float(out_v[i]),
                    float(self._law_oasym[row]),
                    float(self._law_tau[row]),
                    float(self._law_slope[row]),
                    float(self._law_half[row]),
                    table.base_hz, table.gain, table.f_center,
                    table.v_center, table.f_min, table.f_max,
                    table.v_lo, table.v_hi,
                    float(need[i]), float(dt_h[i]),
                )
                if ej:
                    eject[i] = True
                    continue
            if dt_fb is not None and t[i] + dt_fb <= best_t[i]:
                best_t[i] = t[i] + dt_fb
                kind[i] = _FB

        m = has_res & (pres <= best_t)
        best_t[m] = pres[m]
        kind[m] = _RESET

        # --- advance (mirrors _advance_to + phase_advance fast path) --
        dt = best_t - t
        adv = dt > 0.0
        is_exp = kindlaw == _EXP
        is_ramp = kindlaw == _RAMP
        tau = self._law_tau[rows]
        x = -dt / tau
        decay = np.ones(idx.size)
        neg_expm1 = np.zeros(idx.size)
        for i in np.flatnonzero(adv & is_exp).tolist():
            decay[i] = math.exp(x[i])
            neg_expm1[i] = -math.expm1(x[i])
        o_asym = self._law_oasym[rows]
        gap = out_v - o_asym
        slope = self._law_slope[rows]
        val = np.where(
            is_exp, o_asym + gap * decay,
            np.where(is_ramp, out_v + slope * dt, out_v),
        )
        v_int = np.where(
            is_exp, o_asym * dt + (gap * tau) * neg_expm1,
            np.where(is_ramp,
                     out_v * dt + (self._law_half[rows] * dt) * dt,
                     out_v * dt),
        )
        v0 = np.minimum(out_v, val)
        v1 = np.maximum(out_v, val)
        # Clamp-window excursions eject only linear-VCO lanes; the
        # nonlinear phase path integrates the clamped curve numerically
        # and needs no window (mirroring scalar phase_advance).
        eject |= adv & ~nl & ~(
            (self._v_lo[idx] <= v0) & (v1 <= self._v_hi[idx])
        )
        asym = self._law_asym[rows]
        vc_new = np.where(
            is_exp, asym + (vc - asym) * decay,
            np.where(is_ramp, vc + slope * dt, vc),
        )
        phase_new = np.where(
            adv,
            self._phase[idx] + (self._base_hz[idx] * dt
                                + self._gain[idx] * v_int),
            self._phase[idx],
        )
        if nl.any():
            # Nonlinear lanes: replace the linear phase advance with the
            # composite-Simpson integral of the real tuning curve,
            # bit-identical to scalar VCO._numeric_phase.
            for i in np.flatnonzero(adv & nl & ~eject).tolist():
                row = rows[i]
                if kindlaw[i] == _RAMP:
                    seg = RampSegment(float(out_v[i]),
                                      float(self._law_slope[row]))
                elif kindlaw[i] == _EXP:
                    seg = ExponentialSegment(float(out_v[i]),
                                             float(self._law_oasym[row]),
                                             float(self._law_tau[row]))
                else:
                    seg = ConstantSegment(float(out_v[i]))
                table = self._tables[idx[i]]
                pa = _simpson_phase(table.law, seg, float(dt[i]),
                                    table.f_min, table.f_max)
                phase_new[i] = float(self._phase[idx[i]]) + pa
        vc_new = np.where(adv, vc_new, vc)

        # --- PFD edge checks (mirrors _check_monotonic / _on_edge) ----
        is_event = kind != _END
        levt = self._levt[idx]
        eject |= is_event & ~np.isnan(levt) & (best_t < levt)
        is_edge = (kind == _REF) | (kind == _FB)
        eject |= is_edge & has_res & (best_t >= pres)
        eject |= (kind == _RESET) & (np.isnan(self._upr[idx])
                                     | np.isnan(self._dnr[idx]))

        # --- hand off ejected lanes from their pre-event state --------
        if eject.any():
            for i in np.flatnonzero(eject).tolist():
                self._hand_off(int(idx[i]), "ejected")
        ok = ~eject
        li = idx[ok]
        if li.size == 0:
            return

        # --- commit -------------------------------------------------
        self._t[li] = best_t[ok]
        self._vc[li] = vc_new[ok]
        self._phase[li] = phase_new[ok]
        kind_ok = kind[ok]
        ev = kind_ok != _END
        self._events[li[ev]] += 1
        self._levt[li[ev]] = best_t[ok][ev]

        ref = kind_ok == _REF
        if ref.any():
            lr = li[ref]
            tr = best_t[ok][ref]
            newly = ~self._up[lr]
            self._up[lr] = True
            set_lanes = lr[newly]
            self._upr[set_lanes] = tr[newly]
            both = newly & self._dn[lr]
            self._pres[lr[both]] = tr[both] + self._rdelay[lr[both]]
            for i, lane in enumerate(lr.tolist()):
                j = int(self._j[lane]) + 1
                self._j[lane] = j
                self._tref[lane] = self._edges[lane][j]

        fb = kind_ok == _FB
        if fb.any():
            lf = li[fb]
            tf = best_t[ok][fb]
            self._phase[lf] = self._fbt[lf]
            self._fbt[lf] = self._fbt[lf] + self._nf[lf]
            newly = ~self._dn[lf]
            self._dn[lf] = True
            set_lanes = lf[newly]
            self._dnr[set_lanes] = tf[newly]
            both = newly & self._up[lf]
            self._pres[lf[both]] = tf[both] + self._rdelay[lf[both]]

        res = kind_ok == _RESET
        if res.any():
            lz = li[res]
            self._up[lz] = False
            self._dn[lz] = False
            self._pres[lz] = np.nan

        if (ref | fb | res).any():
            changed = li[ref | fb | res]
            s = (self._up[changed].astype(np.int64)
                 + 2 * self._dn[changed].astype(np.int64))
            for i, lane in enumerate(changed.tolist()):
                self._drive[lane] = \
                    self._tables[lane].s_to_drive[int(s[i])]

        done = kind_ok == _END
        for lane in li[done].tolist():
            self._active[lane] = False
            self._results[self._vec[lane]] = LaneResult(
                snapshot=self._materialize(lane), mode="vector",
                nonlinear=self._tables[lane].nonlinear,
            )

    # ------------------------------------------------------------------
    # measurement phase: Table 2 stages 1-4 in lockstep
    # ------------------------------------------------------------------
    def _run_measure(self) -> None:
        """Batch stages 1–4 across settled lanes carrying a MeasureSpec.

        Every eligible lane (linear physics, usable settle snapshot, a
        :class:`MeasureSpec` on its :class:`SettleLane`) is reloaded
        from its settle result and driven through the arm / peak-watch /
        hold-and-count stages by the same lockstep event engine that
        settled it: the stage control flow is delegated to the shared
        :class:`~repro.core.sequencer.MeasurementScript` at run-to-
        target boundaries (the END events) and the Figure 7 latch is
        evaluated as masked array ops at every PFD reset.  A lane whose
        events the arrays cannot advance faithfully — or whose script
        raises — keeps its settle-only result: the orchestrating sweep
        measures (or reproduces the identical error) from the cached
        settle snapshot, so correctness never depends on this phase.

        The loop runs in two passes for the wall-clock split: first
        only lanes still in stages 1–3 (monitor), then everything that
        remains (the hold-and-count tails) — lockstep lanes are
        independent, so pausing a held lane while siblings monitor
        changes no measured value.
        """
        if not self._meas_enabled or not self._vec:
            return
        n = len(self._vec)
        self._tend = np.zeros(n)
        self._open = np.zeros(n, dtype=bool)
        self._watch = np.zeros(n, dtype=bool)
        self._monph = np.zeros(n, dtype=bool)
        self._rec = np.zeros(n, dtype=bool)
        self._lq = np.zeros(n, dtype=bool)
        self._lvalid = np.zeros(n, dtype=bool)
        self._inv_d = np.zeros(n)
        self._and_d = np.zeros(n)
        self._t_arm_arr = np.zeros(n)
        self._n_edges_arr = np.array(
            [len(e) for e in self._edges], dtype=np.int64
        )
        self._mscript: List[Optional[MeasurementScript]] = [None] * n
        self._fb_rec: List[Optional[PulseTrain]] = [None] * n
        self._active[:] = False

        loaded = 0
        for i in range(n):
            lane = self.lanes[self._vec[i]]
            if lane.measure is None or self._tables[i].nonlinear:
                continue
            result = self._results[self._vec[i]]
            if result is None or result.snapshot is None:
                continue
            if self._load_measure_state(i, lane, result.snapshot):
                loaded += 1
        if loaded == 0:
            return
        if loaded <= self.drain_width:
            for i in np.flatnonzero(self._active).tolist():
                self._meas_eject(i)
            return
        t0 = perf_counter()
        while True:
            mon = np.flatnonzero(self._active & self._monph)
            if mon.size <= self.drain_width:
                # The few monitoring stragglers just join the second
                # pass; only total farm width decides scalar hand-off.
                break
            self._step_measure(mon)
        t1 = perf_counter()
        while True:
            idx = np.flatnonzero(self._active)
            if idx.size == 0:
                break
            if idx.size <= self.drain_width:
                for i in idx.tolist():
                    self._meas_eject(i)
                break
            self._step_measure(idx)
        self.wall_monitor_s += t1 - t0
        self.wall_measure_s += perf_counter() - t1

    def _load_measure_state(self, i: int, lane: SettleLane,
                            snap: SimulatorSnapshot) -> bool:
        """Restore one settled snapshot into the lane arrays; arm stage 1.

        Mirrors :meth:`~repro.pll.simulator.PLLTransientSimulator.
        restore` for the state the arrays carry; anything they cannot
        represent (an unknown drive, a foreign edge cursor) leaves the
        lane settle-only for the scalar sequencer.
        """
        table = self._tables[i]
        spec = lane.measure
        if (snap.loop_open or snap.pending_activation is not None
                or snap.next_sample is not None):
            return False
        drive_idx = None
        for k, d in enumerate(table.drives):
            if d is snap.applied_drive:
                drive_idx = k
                break
        if drive_idx is None:
            for k, d in enumerate(table.drives):
                if d == snap.applied_drive:
                    drive_idx = k
                    break
        if drive_idx is None:
            return False
        state = snap.source_state
        try:
            j = int(state[0]) - 1
            t_last = float(state[1])
        except (TypeError, ValueError, IndexError):
            return False
        edges = self._edges[i]
        if not (0 <= j < len(edges)):
            return False
        if float(edges[j]) != snap.t_ref_next or t_last != snap.t_ref_next:
            return False
        try:
            script = MeasurementScript(
                table.pll, lane.stimulus, spec.config, lane.f_mod,
                spec.arm_index, max_wait_cycles=spec.max_wait_cycles,
            )
        except Exception:  # noqa: BLE001 - exotic stimulus: scalar path
            return False
        target = script.next_target()
        if target is None or target < snap.time:
            return False
        nan = float("nan")
        pfd = snap.pfd
        self._t[i] = snap.time
        self._vc[i] = snap.vc
        self._phase[i] = snap.vco_phase
        self._fbt[i] = snap.fb_target
        self._j[i] = j
        self._tref[i] = float(edges[j])
        self._up[i] = pfd.up
        self._dn[i] = pfd.dn
        self._levt[i] = nan if pfd.last_event_time is None \
            else pfd.last_event_time
        self._pres[i] = nan if pfd.pending_reset is None \
            else pfd.pending_reset
        self._upr[i] = nan if pfd.last_up_rise is None else pfd.last_up_rise
        self._dnr[i] = nan if pfd.last_dn_rise is None else pfd.last_dn_rise
        self._drive[i] = drive_idx
        self._events[i] = snap.events
        cfg = spec.config
        self._inv_d[i] = cfg.detector_inverter_delay
        self._and_d[i] = cfg.detector_and_delay
        self._t_arm_arr[i] = script.t_arm
        self._tend[i] = target
        self._watch[i] = True
        self._monph[i] = True
        self._mscript[i] = script
        self._fb_rec[i] = PulseTrain(f"{table.pll.name}.fb")
        self._active[i] = True
        return True

    def _meas_eject(self, lane: int) -> None:
        """Leave this lane settle-only; the sweep measures it scalar."""
        self._active[lane] = False
        self._monph[lane] = False
        self._mscript[lane] = None
        self._fb_rec[lane] = None
        self.stats["measure_ejected"] += 1

    def _capture(self, lane: int, t_event: float) -> None:
        """The batched latch fired its first post-arm maximum: stage 3.

        Mirrors the scalar capture callback plus ``open_loop()``: stop
        the phase counter at the MFREQ instant, clear the PFD and idle
        the pump (the hold mux flips within the same PFD cycle), and
        start recording feedback edges for the stage 4 count.
        """
        try:
            self._mscript[lane].capture(t_event)
        except Exception:  # noqa: BLE001 - scalar reproduces the error
            self._meas_eject(lane)
            return
        self._watch[lane] = False
        self._open[lane] = True
        self._rec[lane] = True
        self._up[lane] = False
        self._dn[lane] = False
        self._pres[lane] = np.nan
        self._drive[lane] = self._tables[lane].idle_idx

    def _meas_boundary(self, lane: int) -> None:
        """Fire the stage script at a run-to-target boundary (END)."""
        script = self._mscript[lane]
        probe = _LaneProbe(self, lane)
        try:
            script.advance(float(self._t[lane]), probe)
        except MeasurementError:
            # A legitimate test outcome (no-MFREQ starvation, a count
            # that never gated) — but the farm publishes no errors: the
            # lane keeps its settle-only result and the orchestrating
            # sweep reproduces the identical error from that snapshot.
            self._active[lane] = False
            self._monph[lane] = False
            self._mscript[lane] = None
            self._fb_rec[lane] = None
            self.stats["measure_failed"] += 1
            return
        except Exception:  # noqa: BLE001 - scalar reproduces the error
            self._meas_eject(lane)
            return
        target = script.next_target()
        if target is None:
            table = self._tables[lane]
            self._results[self._vec[lane]].measurement = ToneMeasurement(
                f_mod=script.f_mod,
                modulation_period=script.t_mod,
                held=script.held,
                phase_count=script.phase_count,
                f_out_nominal=table.pll.f_out_nominal,
                arm_time=script.t_arm,
                peak_event=script.event,
                stage_log=script.stage_log,
                timing=ToneTiming(0.0, 0.0, 0.0, warm=True),
            )
            self._active[lane] = False
            self._monph[lane] = False
            self._mscript[lane] = None
            self._fb_rec[lane] = None
            self.stats["measured"] += 1
            return
        self._tend[lane] = target
        self._monph[lane] = script.monitoring

    def _step_measure(self, idx: np.ndarray) -> None:
        """One lockstep measurement event per live lane.

        The settle engine's event selection/advance with the stage 1–4
        hardware grafted onto the commits: reference edges feed *both*
        PFD inputs on open (held) lanes, feedback edges are recorded
        for the reciprocal counter once a lane's hold engages, the
        Figure 7 latch is sampled as array ops at every PFD reset (after
        the drive update, matching the scalar reset dispatch order), and
        the END event is each lane's next run-to-target boundary rather
        than the settle end.  All measurement lanes are linear —
        nonlinear devices measure scalar — so the Simpson branches of
        :meth:`_step` are gone.
        """
        t = self._t[idx]
        vc = self._vc[idx]
        rows = self._row_base[idx] + self._drive[idx]
        kindlaw = self._law_kind[rows]
        pres = self._pres[idx]
        has_res = ~np.isnan(pres)

        # --- event selection (mirrors _next_event) -------------------
        best_t = self._tend[idx].copy()
        kind = np.full(idx.size, _END, dtype=np.int64)

        tref = self._tref[idx]
        m = tref <= best_t
        best_t[m] = tref[m]
        kind[m] = _REF

        horizon = best_t.copy()
        m = has_res & (pres < horizon)
        horizon[m] = pres[m]
        dt_h = horizon - t

        eject = dt_h < 0.0

        need = self._fbt[idx] - self._phase[idx]
        due = need <= 1e-9
        eject |= due & (need < -1e-6)
        m = due & (t <= best_t)
        best_t[m] = t[m]
        kind[m] = _FB

        out_v = np.where(
            kindlaw == _EXP,
            self._law_oa[rows] * vc + self._law_ob[rows],
            np.where(kindlaw == _RAMP, vc + self._law_ooff[rows], vc),
        )
        solving = ~due & (dt_h > 0.0)
        m = solving & (kindlaw == _CONST)
        if m.any():
            f = self._f_center[idx] + self._gain[idx] * (
                out_v - self._v_center[idx]
            )
            f = np.minimum(np.maximum(f, self._f_min[idx]),
                           self._f_max[idx])
            dt_fb = need / f
            cand = t + dt_fb
            hit = m & (dt_fb <= dt_h) & (cand <= best_t)
            best_t[hit] = cand[hit]
            kind[hit] = _FB
        for i in np.flatnonzero(solving & (kindlaw != _CONST)).tolist():
            row = rows[i]
            table = self._tables[idx[i]]
            dt_fb, ej = _solve_fb_crossing(
                int(kindlaw[i]), float(out_v[i]),
                float(self._law_oasym[row]), float(self._law_tau[row]),
                float(self._law_slope[row]), float(self._law_half[row]),
                table.base_hz, table.gain, table.f_center,
                table.v_center, table.f_min, table.f_max,
                table.v_lo, table.v_hi,
                float(need[i]), float(dt_h[i]),
            )
            if ej:
                eject[i] = True
                continue
            if dt_fb is not None and t[i] + dt_fb <= best_t[i]:
                best_t[i] = t[i] + dt_fb
                kind[i] = _FB

        m = has_res & (pres <= best_t)
        best_t[m] = pres[m]
        kind[m] = _RESET

        # --- advance (mirrors _advance_to + phase_advance) -----------
        dt = best_t - t
        adv = dt > 0.0
        is_exp = kindlaw == _EXP
        is_ramp = kindlaw == _RAMP
        tau = self._law_tau[rows]
        x = -dt / tau
        decay = np.ones(idx.size)
        neg_expm1 = np.zeros(idx.size)
        for i in np.flatnonzero(adv & is_exp).tolist():
            decay[i] = math.exp(x[i])
            neg_expm1[i] = -math.expm1(x[i])
        o_asym = self._law_oasym[rows]
        gap = out_v - o_asym
        slope = self._law_slope[rows]
        val = np.where(
            is_exp, o_asym + gap * decay,
            np.where(is_ramp, out_v + slope * dt, out_v),
        )
        v_int = np.where(
            is_exp, o_asym * dt + (gap * tau) * neg_expm1,
            np.where(is_ramp,
                     out_v * dt + (self._law_half[rows] * dt) * dt,
                     out_v * dt),
        )
        v0 = np.minimum(out_v, val)
        v1 = np.maximum(out_v, val)
        eject |= adv & ~(
            (self._v_lo[idx] <= v0) & (v1 <= self._v_hi[idx])
        )
        asym = self._law_asym[rows]
        vc_new = np.where(
            is_exp, asym + (vc - asym) * decay,
            np.where(is_ramp, vc + slope * dt, vc),
        )
        phase_new = np.where(
            adv,
            self._phase[idx] + (self._base_hz[idx] * dt
                                + self._gain[idx] * v_int),
            self._phase[idx],
        )
        vc_new = np.where(adv, vc_new, vc)

        # --- PFD edge checks (mirrors _check_monotonic / _on_edge) ----
        is_event = kind != _END
        levt = self._levt[idx]
        eject |= is_event & ~np.isnan(levt) & (best_t < levt)
        is_edge = (kind == _REF) | (kind == _FB)
        eject |= is_edge & has_res & (best_t >= pres)
        eject |= (kind == _RESET) & (np.isnan(self._upr[idx])
                                     | np.isnan(self._dnr[idx]))
        # The measurement horizon is an estimate: a lane that outruns
        # its pregenerated edge train leaves the farm instead of
        # reading past the end.
        eject |= (kind == _REF) & (self._j[idx] + 1
                                   >= self._n_edges_arr[idx])

        # --- ejects: back to the settle-only result -------------------
        if eject.any():
            for i in np.flatnonzero(eject).tolist():
                self._meas_eject(int(idx[i]))
        ok = ~eject
        li = idx[ok]
        if li.size == 0:
            return

        # --- commit --------------------------------------------------
        self._t[li] = best_t[ok]
        self._vc[li] = vc_new[ok]
        self._phase[li] = phase_new[ok]
        kind_ok = kind[ok]
        ev = kind_ok != _END
        self._events[li[ev]] += 1
        self._levt[li[ev]] = best_t[ok][ev]

        ref = kind_ok == _REF
        if ref.any():
            lr = li[ref]
            tr = best_t[ok][ref]
            newly = ~self._up[lr]
            self._up[lr] = True
            set_lanes = lr[newly]
            self._upr[set_lanes] = tr[newly]
            both = newly & self._dn[lr]
            self._pres[lr[both]] = tr[both] + self._rdelay[lr[both]]
            # Open (held) lanes: the hold mux feeds the reference to
            # both PFD inputs, so the same edge also clocks DN.
            opn = self._open[lr]
            newly_dn = opn & ~self._dn[lr]
            self._dn[lr[newly_dn]] = True
            self._dnr[lr[newly_dn]] = tr[newly_dn]
            both2 = newly_dn & self._up[lr]
            self._pres[lr[both2]] = tr[both2] + self._rdelay[lr[both2]]
            for i, lane in enumerate(lr.tolist()):
                j = int(self._j[lane]) + 1
                self._j[lane] = j
                self._tref[lane] = self._edges[lane][j]

        fb = kind_ok == _FB
        if fb.any():
            lf = li[fb]
            tf = best_t[ok][fb]
            self._phase[lf] = self._fbt[lf]
            self._fbt[lf] = self._fbt[lf] + self._nf[lf]
            # An open lane's feedback edge is recorded but never
            # reaches the PFD (the mux holds its input at the ref).
            cl = ~self._open[lf]
            lc = lf[cl]
            tc = tf[cl]
            newly = ~self._dn[lc]
            self._dn[lc] = True
            set_lanes = lc[newly]
            self._dnr[set_lanes] = tc[newly]
            both = newly & self._up[lc]
            self._pres[lc[both]] = tc[both] + self._rdelay[lc[both]]
            for i, lane in enumerate(lf.tolist()):
                if self._rec[lane]:
                    self._fb_rec[lane].record(float(tf[i]))

        res = kind_ok == _RESET
        if res.any():
            lz = li[res]
            ts = best_t[ok][res]
            upr_z = self._upr[lz]
            dnr_z = self._dnr[lz]
            self._up[lz] = False
            self._dn[lz] = False
            self._pres[lz] = np.nan

        # The scalar reset dispatch updates the drive *before* the
        # cycle observers fire, so the drive loop runs ahead of the
        # latch sampling below.  Open-lane feedback edges skip the
        # update (their dispatch never calls _drive_update).
        upd = ref | res | (fb & ~self._open[li])
        if upd.any():
            changed = li[upd]
            s = (self._up[changed].astype(np.int64)
                 + 2 * self._dn[changed].astype(np.int64))
            for i, lane in enumerate(changed.tolist()):
                self._drive[lane] = \
                    self._tables[lane].s_to_drive[int(s[i])]

        if res.any():
            # Figure 7 latch, batched: D = NOT(DN still high one
            # inverter delay before the AND-gated clock); an edge on Q
            # is a peak event, a falling edge the maximum (MFREQ).
            smp = ~self._open[lz]
            ls = lz[smp]
            if ls.size:
                t_both = np.maximum(upr_z[smp], dnr_z[smp])
                t_clk = t_both + self._and_d[ls]
                t_look = t_clk - self._inv_d[ls]
                dn_high = (dnr_z[smp] <= t_look) & (t_look < ts[smp])
                d = ~dn_high
                emit = self._lvalid[ls] & (self._lq[ls] != d)
                is_max = emit & self._lq[ls] & ~d
                cap = is_max & self._watch[ls] \
                    & (t_clk > self._t_arm_arr[ls])
                self._lq[ls] = d
                self._lvalid[ls] = True
                for k in np.flatnonzero(cap).tolist():
                    self._capture(int(ls[k]), float(t_clk[k]))

        done = kind_ok == _END
        for lane in li[done].tolist():
            self._meas_boundary(int(lane))

    # ------------------------------------------------------------------
    # per-lane settle kernel
    # ------------------------------------------------------------------
    def _kernel_settle(self, lane: int, mode: str = "vector") -> None:
        """Settle one lane in a specialised scalar kernel.

        A straight-line transcription of the scalar event loop
        (``run_until`` → ``_next_event`` → ``_advance_to`` →
        ``_dispatch``) with the per-event machinery peeled away: law
        coefficients live in unpacked locals, the reference edges come
        from the pregenerated shared train, transcendentals are bound
        locals, and the feedback-edge solver is inlined (the constant-law
        one-division fast path, and the safeguarded Newton iteration of
        ``solve_increasing`` for ramp/exponential laws).  Every
        floating-point expression replicates the scalar engine's operand
        order exactly, so a kernel-completed lane is bit-identical to a
        scalar settle.  Nonlinear (4046-style) lanes integrate phase via
        :func:`_simpson_phase`, bit-identical to ``VCO._numeric_phase``.

        Any state the kernel cannot advance faithfully — a clamp-window
        excursion, a solver failure, any condition the scalar engine
        treats as an error — ejects the lane *from its pre-event state*,
        and a scalar simulator finishes (or reproduces the error) from
        that snapshot, exactly like a lockstep ejection.
        """
        table = self._tables[lane]
        settle_end = float(self._settle_end[lane])
        edges = self._edges[lane].tolist()
        n_edges = len(edges)
        laws = [(r.kind, r.asym, r.tau, r.slope, r.half_slope,
                 r.o_a, r.o_b, r.o_asym, r.o_off) for r in table.laws]
        s_to_drive = table.s_to_drive
        base_hz = table.base_hz
        gain = table.gain
        f_center = table.f_center
        v_center = table.v_center
        f_min = table.f_min
        f_max = table.f_max
        v_lo = table.v_lo
        v_hi = table.v_hi
        nf = table.nf
        rdelay = table.reset_delay
        nonlinear = table.nonlinear
        nl_law = table.law
        exp_ = math.exp
        expm1_ = math.expm1

        # Mutable loop state, unpacked from the arrays.
        t = float(self._t[lane])
        vc = float(self._vc[lane])
        phase = float(self._phase[lane])
        fbt = float(self._fbt[lane])
        j = int(self._j[lane])
        tref = float(self._tref[lane])
        up = bool(self._up[lane])
        dn = bool(self._dn[lane])

        def _opt(arr: np.ndarray) -> Optional[float]:
            v = float(arr[lane])
            return None if math.isnan(v) else v

        levt = _opt(self._levt)
        pres = _opt(self._pres)
        upr = _opt(self._upr)
        dnr = _opt(self._dnr)
        drive_idx = int(self._drive[lane])
        events = int(self._events[lane])

        (l_kind, l_asym, l_tau, l_slope, l_half,
         l_oa, l_ob, l_oasym, l_ooff) = laws[drive_idx]

        eject = False
        while True:
            # --- event selection (transcribes _next_event) ------------
            best_t = settle_end
            ekind = _END
            if tref <= best_t:
                best_t = tref
                ekind = _REF
            horizon = best_t
            if pres is not None and pres < horizon:
                horizon = pres
            dt_h = horizon - t
            if dt_h < 0.0:
                eject = True  # scalar raises "horizon precedes time"
                break
            need = fbt - phase
            if need <= 1e-9:
                if need < -1e-6:
                    eject = True  # scalar raises "overshot its target"
                    break
                if t <= best_t:
                    best_t = t
                    ekind = _FB
            elif dt_h > 0.0:
                if l_kind == _EXP:
                    out_v = l_oa * vc + l_ob
                elif l_kind == _RAMP:
                    out_v = vc + l_ooff
                else:
                    out_v = vc
                dt_fb = None
                if l_kind == _CONST and not nonlinear:
                    # Tri-stated filter, linear VCO: one division.
                    f = f_center + gain * (out_v - v_center)
                    f = min(max(f, f_min), f_max)
                    cand = need / f
                    if cand <= dt_h:
                        dt_fb = cand
                else:
                    # Generic crossing: time_to_phase's reachability
                    # guard plus solve_increasing, inlined.
                    seg = None
                    if nonlinear:
                        if l_kind == _EXP:
                            seg = ExponentialSegment(out_v, l_oasym,
                                                     l_tau)
                        elif l_kind == _RAMP:
                            seg = RampSegment(out_v, l_slope)
                        else:
                            seg = ConstantSegment(out_v)
                    gap0 = out_v - l_oasym
                    gk = gap0 * l_tau
                    # pa(dt_h): bracketing guard
                    if nonlinear:
                        pa_hi = _simpson_phase(nl_law, seg, dt_h,
                                               f_min, f_max)
                    elif l_kind == _EXP:
                        x = -dt_h / l_tau
                        v1 = l_oasym + gap0 * exp_(x)
                        va, vb = (v1, out_v) if v1 < out_v \
                            else (out_v, v1)
                        if not (v_lo <= va and vb <= v_hi):
                            eject = True  # clamp excursion mid-solve
                            break
                        pa_hi = base_hz * dt_h + gain * (
                            l_oasym * dt_h + gk * -expm1_(x))
                    else:  # _RAMP
                        v1 = out_v + l_slope * dt_h
                        va, vb = (v1, out_v) if v1 < out_v \
                            else (out_v, v1)
                        if not (v_lo <= va and vb <= v_hi):
                            eject = True
                            break
                        pa_hi = base_hz * dt_h + gain * (
                            out_v * dt_h + (l_half * dt_h) * dt_h)
                    if pa_hi >= need:
                        # solve_increasing(pa, need, 0.0, dt_h):
                        # pa(0) == 0 so f_lo = -need < 0 always.
                        if pa_hi == need:
                            dt_fb = dt_h
                        else:
                            lo = 0.0
                            hi = dt_h
                            x_s = 0.5 * (lo + hi)
                            for _ in range(200):
                                if hi - lo <= 1e-13:
                                    dt_fb = 0.5 * (lo + hi)
                                    break
                                if nonlinear:
                                    pa_x = _simpson_phase(
                                        nl_law, seg, x_s, f_min, f_max)
                                elif l_kind == _EXP:
                                    x = -x_s / l_tau
                                    v1 = l_oasym + gap0 * exp_(x)
                                    va, vb = (v1, out_v) \
                                        if v1 < out_v else (out_v, v1)
                                    if not (v_lo <= va and vb <= v_hi):
                                        eject = True
                                        break
                                    pa_x = base_hz * x_s + gain * (
                                        l_oasym * x_s
                                        + gk * -expm1_(x))
                                else:
                                    v1 = out_v + l_slope * x_s
                                    va, vb = (v1, out_v) \
                                        if v1 < out_v else (out_v, v1)
                                    if not (v_lo <= va and vb <= v_hi):
                                        eject = True
                                        break
                                    pa_x = base_hz * x_s + gain * (
                                        out_v * x_s
                                        + (l_half * x_s) * x_s)
                                f_x = pa_x - need
                                if f_x == 0.0:
                                    dt_fb = x_s
                                    break
                                if f_x < 0.0:
                                    lo = x_s
                                else:
                                    hi = x_s
                                # Newton candidate off the segment's
                                # instantaneous frequency.
                                if l_kind == _EXP:
                                    v_d = l_oasym \
                                        + gap0 * exp_(-x_s / l_tau)
                                elif l_kind == _RAMP:
                                    v_d = out_v + l_slope * x_s
                                else:
                                    v_d = out_v
                                if nonlinear:
                                    f_d = min(max(nl_law.evolve(v_d),
                                                  f_min), f_max)
                                else:
                                    f_d = f_center + gain * (
                                        v_d - v_center)
                                    f_d = min(max(f_d, f_min), f_max)
                                x_next = None
                                if f_d > 0.0:
                                    candidate = x_s - f_x / f_d
                                    if lo < candidate < hi:
                                        x_next = candidate
                                if x_next is None:
                                    x_next = 0.5 * (lo + hi)
                                x_s = x_next
                            else:
                                eject = True  # scalar: ConvergenceError
                            if eject:
                                break
                if dt_fb is not None and t + dt_fb <= best_t:
                    best_t = t + dt_fb
                    ekind = _FB
            if pres is not None and pres <= best_t:
                best_t = pres
                ekind = _RESET

            # --- dispatch validity (checks only, pre-commit) ----------
            if ekind != _END:
                if levt is not None and best_t < levt:
                    eject = True  # PFD monotonicity violation
                    break
                if ekind == _RESET:
                    if upr is None or dnr is None:
                        eject = True  # reset with no cycle in flight
                        break
                else:
                    if pres is not None and best_t >= pres:
                        eject = True  # edge after pending reset was due
                        break
                    if ekind == _REF and j + 1 >= n_edges:
                        eject = True  # edge train exhausted (bug guard)
                        break

            # --- advance (transcribes _advance_to + phase_advance) ----
            dt = best_t - t
            if dt > 0.0:
                if l_kind == _EXP:
                    ov = l_oa * vc + l_ob
                    x = -dt / l_tau
                    e = exp_(x)
                    gap0 = ov - l_oasym
                    if nonlinear:
                        pa = _simpson_phase(
                            nl_law, ExponentialSegment(ov, l_oasym,
                                                       l_tau),
                            dt, f_min, f_max)
                    else:
                        v1 = l_oasym + gap0 * e
                        va, vb = (v1, ov) if v1 < ov else (ov, v1)
                        if not (v_lo <= va and vb <= v_hi):
                            eject = True
                            break
                        pa = base_hz * dt + gain * (
                            l_oasym * dt + (gap0 * l_tau) * -expm1_(x))
                    vc = l_asym + (vc - l_asym) * e
                elif l_kind == _RAMP:
                    ov = vc + l_ooff
                    if nonlinear:
                        pa = _simpson_phase(
                            nl_law, RampSegment(ov, l_slope),
                            dt, f_min, f_max)
                    else:
                        v1 = ov + l_slope * dt
                        va, vb = (v1, ov) if v1 < ov else (ov, v1)
                        if not (v_lo <= va and vb <= v_hi):
                            eject = True
                            break
                        pa = base_hz * dt + gain * (
                            ov * dt + (l_half * dt) * dt)
                    vc = vc + l_slope * dt
                else:
                    if nonlinear:
                        pa = _simpson_phase(
                            nl_law, ConstantSegment(vc),
                            dt, f_min, f_max)
                    else:
                        if not (v_lo <= vc and vc <= v_hi):
                            eject = True
                            break
                        pa = base_hz * dt + gain * (vc * dt)
                phase = phase + pa
            t = best_t

            # --- commit the dispatch ----------------------------------
            if ekind == _END:
                break
            events += 1
            levt = best_t
            if ekind == _REF:
                if not up:
                    up = True
                    upr = best_t
                    if dn:
                        pres = best_t + rdelay
                j += 1
                tref = edges[j]
            elif ekind == _FB:
                phase = fbt
                fbt = fbt + nf
                if not dn:
                    dn = True
                    dnr = best_t
                    if up:
                        pres = best_t + rdelay
            else:  # _RESET
                up = False
                dn = False
                pres = None
            new_idx = s_to_drive[(1 if up else 0) + (2 if dn else 0)]
            if new_idx != drive_idx:
                drive_idx = new_idx
                (l_kind, l_asym, l_tau, l_slope, l_half,
                 l_oa, l_ob, l_oasym, l_ooff) = laws[drive_idx]

        # Write the locals back so _materialize sees this state (the
        # pre-event state on ejection; the finished state otherwise).
        self._t[lane] = t
        self._vc[lane] = vc
        self._phase[lane] = phase
        self._fbt[lane] = fbt
        self._j[lane] = j
        self._tref[lane] = tref
        self._up[lane] = up
        self._dn[lane] = dn
        nan = float("nan")
        self._levt[lane] = nan if levt is None else levt
        self._pres[lane] = nan if pres is None else pres
        self._upr[lane] = nan if upr is None else upr
        self._dnr[lane] = nan if dnr is None else dnr
        self._drive[lane] = drive_idx
        self._events[lane] = events
        if eject:
            # A drained lane stays "drained" through its scalar finish —
            # the mode records where it left lockstep, not which engine
            # completed it.
            self._hand_off(lane, mode if mode == "drained" else "ejected")
            return
        self._active[lane] = False
        self._results[self._vec[lane]] = LaneResult(
            snapshot=self._materialize(lane), mode=mode,
            nonlinear=nonlinear,
        )

    # ------------------------------------------------------------------
    # scalar hand-off
    # ------------------------------------------------------------------
    def _materialize(self, lane: int) -> SimulatorSnapshot:
        """The lane's array state as a real simulator snapshot."""
        table = self._tables[lane]
        j = int(self._j[lane])
        edge = float(self._edges[lane][j])

        def opt(arr: np.ndarray) -> Optional[float]:
            v = float(arr[lane])
            return None if math.isnan(v) else v

        return SimulatorSnapshot(
            pll_name=table.pll.name,
            time=float(self._t[lane]),
            vc=float(self._vc[lane]),
            vco_phase=float(self._phase[lane]),
            fb_target=float(self._fbt[lane]),
            applied_drive=table.drives[int(self._drive[lane])],
            pending_activation=None,
            loop_open=False,
            t_ref_next=edge,
            next_sample=None,
            events=int(self._events[lane]),
            pfd=PFDSnapshot(
                up=bool(self._up[lane]),
                dn=bool(self._dn[lane]),
                last_event_time=opt(self._levt),
                pending_reset=opt(self._pres),
                last_up_rise=opt(self._upr),
                last_dn_rise=opt(self._dnr),
            ),
            source_state=(float(j + 1), edge),
            pll_signature=table.pll.physics_signature(),
        )

    def _finish_from_snapshot(self, spec: SettleLane,
                              snap: SimulatorSnapshot, mode: str,
                              nonlinear: bool) -> LaneResult:
        """Finish one lane in a scalar simulator from a farm snapshot."""
        try:
            source = spec.stimulus.make_source(spec.f_mod, 0.0)
            sim = PLLTransientSimulator(spec.pll, source, record=spec.record)
            sim.restore(snap)
            sim.run_until(spec.settle_end)
            return LaneResult(snapshot=sim.snapshot(), mode=mode,
                              nonlinear=nonlinear)
        except Exception as exc:  # noqa: BLE001 - leave the lane cold;
            # the orchestrating sweep reproduces the identical error
            return LaneResult(snapshot=None, mode=mode, error=str(exc),
                              nonlinear=nonlinear)

    def _hand_off(self, lane: int, mode: str) -> None:
        """Finish one lane in a scalar simulator from its array state."""
        self._active[lane] = False
        spec = self.lanes[self._vec[lane]]
        nonlinear = self._tables[lane].nonlinear
        try:
            snap = self._materialize(lane)
        except Exception as exc:  # noqa: BLE001 - leave the lane cold
            self._results[self._vec[lane]] = LaneResult(
                snapshot=None, mode=mode, error=str(exc),
                nonlinear=nonlinear,
            )
            return
        self._results[self._vec[lane]] = self._finish_from_snapshot(
            spec, snap, mode, nonlinear
        )

    def _scalar_settle(self, spec: SettleLane) -> LaneResult:
        """Full scalar settle for a lane the farm cannot represent."""
        try:
            source = spec.stimulus.make_source(spec.f_mod, 0.0)
            sim = PLLTransientSimulator(spec.pll, source, record=spec.record)
            sim.run_until(spec.settle_end)
            return LaneResult(snapshot=sim.snapshot(), mode="scalar")
        except Exception as exc:  # noqa: BLE001 - leave the lane cold
            return LaneResult(snapshot=None, mode="scalar", error=str(exc))


class _LaneProbe:
    """The simulator surface :class:`MeasurementScript` reads, over one
    farm lane.

    ``output_frequency`` goes through the *real* filter/VCO objects
    (``output_segment(...).value(0.0)``, exactly as the scalar
    property) so the boundary reads are bit-identical by construction,
    not by transcription; ``close_loop`` mirrors the scalar
    ``close_loop()`` (PFD cleared, pump idled, rise times retained).
    """

    __slots__ = ("farm", "lane")

    def __init__(self, farm: VectorizedLotSimulator, lane: int) -> None:
        self.farm = farm
        self.lane = lane

    @property
    def output_frequency(self) -> float:
        farm = self.farm
        lane = self.lane
        table = farm._tables[lane]
        drive = table.drives[int(farm._drive[lane])]
        v_out = table.pll.loop_filter.output_segment(
            float(farm._vc[lane]), drive
        ).value(0.0)
        return table.vco.frequency_of_voltage(v_out)

    @property
    def fb_edges(self) -> PulseTrain:
        return self.farm._fb_rec[self.lane]

    def close_loop(self) -> None:
        farm = self.farm
        lane = self.lane
        farm._open[lane] = False
        farm._up[lane] = False
        farm._dn[lane] = False
        farm._pres[lane] = np.nan
        farm._drive[lane] = farm._tables[lane].idle_idx
