"""Edge-time sources: the reference signals fed to the PLL.

A source produces the strictly increasing times of the reference's
rising edges (only rising edges matter to the PFD).  Edge times are
derived from the accumulated phase in *cycles*::

    Φ(t) = ∫ f(τ) dτ,     edge k at the unique t with Φ(t) = k.

All the laws used here have closed-form Φ, and ``f(t) > 0`` everywhere,
so each edge time is found exactly (Newton with bisection safeguard).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import StimulusError
from repro.sim.solvers import solve_increasing

__all__ = [
    "EdgeSourceBase",
    "ConstantFrequencySource",
    "PiecewiseConstantFrequencySource",
    "SinusoidalFMSource",
    "SinusoidalPMSource",
    "StepFrequencySource",
]


class EdgeSourceBase:
    """Common machinery: an edge counter plus a phase law.

    Subclasses implement :meth:`phase_at` (cycles, strictly increasing)
    and :meth:`frequency_at` (its derivative, Hz, strictly positive).
    The first edge is emitted when the accumulated phase first reaches 1
    — i.e. one nominal period after ``start_time`` for an unmodulated
    source.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.start_time = start_time
        self._k = 0
        self._t_last = start_time

    def snapshot_state(self) -> Tuple[float, ...]:
        """Scalar edge-generator state: the edge index and last edge time.

        Together with the (immutable) phase law this fully determines
        every future edge, so a source restored from this state produces
        a bit-identical continuation of the edge train.
        """
        return (float(self._k), self._t_last)

    def restore_state(self, state: Tuple[float, ...]) -> None:
        """Adopt a state captured by :meth:`snapshot_state`."""
        k, t_last = state
        self._k = int(k)
        self._t_last = t_last

    def phase_at(self, t: float) -> float:
        """Accumulated phase in cycles at absolute time ``t``."""
        raise NotImplementedError

    def frequency_at(self, t: float) -> float:
        """Instantaneous frequency in Hz at absolute time ``t``."""
        raise NotImplementedError

    def next_edge(self) -> float:
        """Time of the next rising edge (strictly increasing)."""
        self._k += 1
        target = float(self._k)
        # Bracket: march forward in steps of the current period until the
        # phase passes the target (the first step almost always does).
        lo = self._t_last
        f_lo = self.frequency_at(lo)
        if f_lo <= 0.0:
            raise StimulusError(
                f"instantaneous frequency {f_lo!r} Hz must stay positive"
            )
        hi = lo + 1.5 / f_lo
        for _ in range(64):
            if self.phase_at(hi) >= target:
                break
            lo = hi
            hi = lo + 1.5 / max(self.frequency_at(lo), 1e-12)
        else:
            raise StimulusError("failed to bracket the next edge time")
        t_edge = solve_increasing(
            fn=self.phase_at,
            target=target,
            lo=lo,
            hi=hi,
            derivative=self.frequency_at,
        )
        if t_edge <= self._t_last and self._k > 1:
            raise StimulusError(
                f"edge times not strictly increasing: {t_edge!r} after "
                f"{self._t_last!r}"
            )
        self._t_last = t_edge
        return t_edge


class ConstantFrequencySource(EdgeSourceBase):
    """Unmodulated reference: edges at ``start_time + k / f``."""

    def __init__(self, frequency: float, start_time: float = 0.0) -> None:
        if frequency <= 0.0:
            raise StimulusError(f"frequency must be positive, got {frequency!r}")
        super().__init__(start_time)
        self.frequency = frequency

    def phase_at(self, t: float) -> float:
        return (t - self.start_time) * self.frequency

    def frequency_at(self, t: float) -> float:
        return self.frequency

    def next_edge(self) -> float:
        # Exact arithmetic beats the generic solver here.
        self._k += 1
        self._t_last = self.start_time + self._k / self.frequency
        return self._t_last


class PiecewiseConstantFrequencySource(EdgeSourceBase):
    """Ideal FSK: frequency constant within dwell intervals.

    The schedule is a repeating cycle of ``(frequency, dwell)`` pairs —
    the idealised view of the Figure 4 mux hopping between DCO taps with
    perfectly timed switching.  (The hardware-faithful variant that
    switches only on output edges is
    :class:`repro.stimulus.dco.DCOProgrammedSource`.)
    """

    def __init__(
        self,
        schedule: Sequence[Tuple[float, float]],
        start_time: float = 0.0,
    ) -> None:
        if not schedule:
            raise StimulusError("schedule must not be empty")
        for f, dwell in schedule:
            if f <= 0.0:
                raise StimulusError(f"schedule frequency must be positive, got {f!r}")
            if dwell <= 0.0:
                raise StimulusError(f"dwell must be positive, got {dwell!r}")
        super().__init__(start_time)
        self.schedule = list(schedule)
        self._cycle = sum(d for _, d in self.schedule)
        # Pre-compute cumulative (time, phase) at dwell boundaries.
        self._bounds: List[Tuple[float, float]] = [(0.0, 0.0)]
        t, p = 0.0, 0.0
        for f, dwell in self.schedule:
            t += dwell
            p += f * dwell
            self._bounds.append((t, p))
        self._phase_per_cycle = p

    def _locate(self, rel_t: float) -> Tuple[float, float, float]:
        """(phase at segment start, time into segment, frequency)."""
        cycles = math.floor(rel_t / self._cycle)
        frac_t = rel_t - cycles * self._cycle
        base_phase = cycles * self._phase_per_cycle
        for (t0, p0), (t1, __), (f, _dwell) in zip(
            self._bounds[:-1], self._bounds[1:], self.schedule
        ):
            if frac_t <= t1:
                return base_phase + p0, frac_t - t0, f
        # Floating-point spill-over into the next cycle.
        return base_phase + self._phase_per_cycle, 0.0, self.schedule[0][0]

    def phase_at(self, t: float) -> float:
        rel = t - self.start_time
        if rel <= 0.0:
            return rel * self.schedule[0][0]
        p0, dt, f = self._locate(rel)
        return p0 + f * dt

    def frequency_at(self, t: float) -> float:
        rel = t - self.start_time
        if rel <= 0.0:
            return self.schedule[0][0]
        __, _dt, f = self._locate(rel)
        return f


class SinusoidalFMSource(EdgeSourceBase):
    """Exact sinusoidal frequency modulation (the bench ideal).

    ``f(t) = f_nominal + deviation · sin(2π f_mod (t - start_time))``

    The deviation peaks (maximum input frequency) at
    ``start_time + (k + 1/4) / f_mod`` — see
    :meth:`modulation_peak_time`.
    """

    def __init__(
        self,
        f_nominal: float,
        deviation: float,
        f_mod: float,
        start_time: float = 0.0,
    ) -> None:
        if f_nominal <= 0.0:
            raise StimulusError(f"f_nominal must be positive, got {f_nominal!r}")
        if f_mod <= 0.0:
            raise StimulusError(f"f_mod must be positive, got {f_mod!r}")
        if not (0.0 <= deviation < f_nominal):
            raise StimulusError(
                f"deviation must be in [0, f_nominal), got {deviation!r}"
            )
        super().__init__(start_time)
        self.f_nominal = f_nominal
        self.deviation = deviation
        self.f_mod = f_mod

    def phase_at(self, t: float) -> float:
        rel = t - self.start_time
        wm = 2.0 * math.pi * self.f_mod
        return self.f_nominal * rel + self.deviation / wm * (1.0 - math.cos(wm * rel))

    def frequency_at(self, t: float) -> float:
        rel = t - self.start_time
        return self.f_nominal + self.deviation * math.sin(
            2.0 * math.pi * self.f_mod * rel
        )

    def modulation_peak_time(self, index: int = 0) -> float:
        """Absolute time of the ``index``-th maximum of the input
        frequency deviation — where Table 2 stage (1) starts the phase
        counter."""
        return self.start_time + (0.25 + index) / self.f_mod

    @property
    def modulation_period(self) -> float:
        """One modulation cycle, ``1 / f_mod`` — ``Tmod`` of eq. (8)."""
        return 1.0 / self.f_mod


class SinusoidalPMSource(EdgeSourceBase):
    """Exact sinusoidal phase modulation.

    ``θ(t) = 2π f_nominal t + peak_phase · sin(2π f_mod t)``

    Section 2 notes phase modulation and frequency modulation are
    interchangeable for this test; this source exists so tests can show
    the equivalence (PM with ``peak_phase = deviation/f_mod · π/...``
    matching FM).  Monotonicity requires
    ``peak_phase · f_mod < f_nominal``.
    """

    def __init__(
        self,
        f_nominal: float,
        peak_phase_rad: float,
        f_mod: float,
        start_time: float = 0.0,
    ) -> None:
        if f_nominal <= 0.0:
            raise StimulusError(f"f_nominal must be positive, got {f_nominal!r}")
        if f_mod <= 0.0:
            raise StimulusError(f"f_mod must be positive, got {f_mod!r}")
        if peak_phase_rad < 0.0:
            raise StimulusError(
                f"peak_phase_rad must be >= 0, got {peak_phase_rad!r}"
            )
        if peak_phase_rad * f_mod >= f_nominal:
            raise StimulusError(
                "modulation index too large: instantaneous frequency would "
                f"go non-positive (peak_phase={peak_phase_rad!r} rad at "
                f"f_mod={f_mod!r} Hz on f_nominal={f_nominal!r} Hz)"
            )
        super().__init__(start_time)
        self.f_nominal = f_nominal
        self.peak_phase_rad = peak_phase_rad
        self.f_mod = f_mod

    def phase_at(self, t: float) -> float:
        rel = t - self.start_time
        return self.f_nominal * rel + self.peak_phase_rad / (
            2.0 * math.pi
        ) * math.sin(2.0 * math.pi * self.f_mod * rel)

    def frequency_at(self, t: float) -> float:
        rel = t - self.start_time
        return self.f_nominal + self.peak_phase_rad * self.f_mod * math.cos(
            2.0 * math.pi * self.f_mod * rel
        )

    @property
    def equivalent_fm_deviation(self) -> float:
        """Peak frequency deviation this PM produces:
        ``peak_phase · f_mod`` Hz."""
        return self.peak_phase_rad * self.f_mod


class StepFrequencySource(EdgeSourceBase):
    """A single frequency step at a programmed instant (channel hop).

    Before ``step_time`` the source runs at ``f_initial``; from then on
    at ``f_final`` (phase-continuous, like re-programming a reference
    divider).  Used to exercise the loop's transient response — the
    time-domain face of the (fn, ζ) pair the transfer-function test
    measures.
    """

    def __init__(
        self,
        f_initial: float,
        f_final: float,
        step_time: float,
        start_time: float = 0.0,
    ) -> None:
        if f_initial <= 0.0 or f_final <= 0.0:
            raise StimulusError(
                f"frequencies must be positive, got {f_initial!r}, "
                f"{f_final!r}"
            )
        if step_time < start_time:
            raise StimulusError(
                f"step_time {step_time!r} precedes start_time {start_time!r}"
            )
        super().__init__(start_time)
        self.f_initial = f_initial
        self.f_final = f_final
        self.step_time = step_time

    def phase_at(self, t: float) -> float:
        rel = t - self.start_time
        step_rel = self.step_time - self.start_time
        if rel <= step_rel:
            return rel * self.f_initial
        return step_rel * self.f_initial + (rel - step_rel) * self.f_final

    def frequency_at(self, t: float) -> float:
        return self.f_initial if t < self.step_time else self.f_final
