"""Figure 12 — *measured* phase response via the full BIST.

Regenerates the phase companion of Figure 11 from the same sweeps: the
eq. (8) phase-counter results (corrected by the designed filter-zero
phase, see repro.core.evaluation) for all three stimulus classes against
the linear theory.

Shape checks: near-zero lag in-band, roughly -45..-50 deg at the natural
frequency (the paper annotates "Phase = -46" at Fn), rolling past -60
above, and sine/multi-tone agreement.
"""

import numpy as np

from repro.analysis.linear_model import PLLLinearModel
from repro.core.evaluation import evaluate_sweep
from repro.presets import PAPER_C, PAPER_R2
from repro.reporting import ascii_series, format_table


def test_fig12_measured_phase(
    benchmark, report, paper_dut, figure11_12_sweeps
):
    sweeps = figure11_12_sweeps
    # Timed payload: the eq. 7/8 evaluation of an already-captured sweep.
    tau2 = PAPER_R2 * PAPER_C
    benchmark(
        evaluate_sweep,
        sweeps["multitone"].measurements,
        zero_correction_tau=tau2,
    )
    theory = PLLLinearModel(paper_dut).bode(
        sweeps["sine"].response.frequencies_hz, label="theory"
    )

    rows = []
    for i, f in enumerate(theory.frequencies_hz):
        rows.append([
            f"{f:.2f}",
            f"{theory.phase_deg[i]:+.1f}",
            f"{sweeps['sine'].response.phase_deg[i]:+.1f}",
            f"{sweeps['multitone'].response.phase_deg[i]:+.1f}",
            f"{sweeps['twotone'].response.phase_deg[i]:+.1f}",
        ])
    table = format_table(
        ["f_mod (Hz)", "theory (deg)", "Pure Sine FM", "Multi Tone FSK",
         "Two Tone FSK"],
        rows,
        title="Figure 12 — measured phase response (eq. 8, deg)",
    )
    series = [("theory", theory.frequencies_hz, theory.phase_deg)] + [
        (sweeps[k].stimulus_label, sweeps[k].response.frequencies_hz,
         sweeps[k].response.phase_deg)
        for k in ("sine", "multitone", "twotone")
    ]
    plot = ascii_series(series, title="Figure 12 — phase (deg) vs f_mod",
                        y_label="deg")
    fn = PLLLinearModel(paper_dut).second_order().fn_hz
    marks = (
        f"phase at fn={fn:.2f} Hz: theory "
        f"{theory.phase_at(fn):+.1f} deg, sine FM "
        f"{sweeps['sine'].response.phase_at(fn):+.1f} deg, multi-tone "
        f"{sweeps['multitone'].response.phase_at(fn):+.1f} deg"
    )
    report("fig12_measured_phase", table + "\n\n" + plot + "\n\n" + marks)

    sine = sweeps["sine"].response
    multi = sweeps["multitone"].response
    # (1) ~0 deg in-band.
    assert abs(sine.phase_at(1.0)) < 10.0
    # (2) the paper's "-46 deg at Fn" annotation region.
    assert -60.0 < sine.phase_at(fn) < -35.0
    # (3) increasing lag beyond the bandwidth.
    assert sine.phase_deg[-1] < -60.0
    # (4) multi-tone tracks sine through 2*fn to within the stepped
    # stimulus's intrinsic granularity (one tone dwell spans 36 deg of
    # the modulation cycle, so +/- a third of a dwell of scatter).
    mask = sine.frequencies_hz <= 2 * fn
    assert np.abs(multi.phase_deg - sine.phase_deg)[mask].max() < 12.0
    # (5) sine tracks theory through 2*fn.
    assert np.abs(sine.phase_deg - theory.phase_deg)[mask].max() < 8.0
