"""Closed-form per-edge settle tier: analytic event-to-event advance.

The vectorized farm already runs whole lots of Stage-0 settles through
array arithmetic, but every lane still pays for generality: branch
dispatch across three segment laws, exponential transcendentals, and
nonlinear-VCO hooks sit in the hot loop even when a lane never uses
them.  For the physics Kuznetsov et al.'s closed-form CP-PLL model
covers exactly — an ideal tri-state PFD driving a passive (lag-lead or
series-RC) filter with current-mode or tri-stated charge-pump drives
into a *linear* VCO tuning law — the inter-event state update is pure
polynomial algebra: the control voltage ramps (or holds) between PFD
switching instants and the VCO phase is a quadratic (or linear) in the
elapsed time.  No exponentials, no quadrature, no segment objects.

:class:`ClosedFormLotSimulator` is that tier.  It subclasses the farm
and settles every eligible lane in :meth:`_cf_settle` — a specialised
transcription of the scalar event loop with *only* the constant and
ramp laws compiled in — before handing whatever remains (exponential
filter laws, recognised-nonlinear VCOs, runtime ejections) to the
inherited vectorized machinery, which in turn ejects to scalar exactly
as before.  That is the ``closed_form → vectorized → scalar`` cascade
``engine="auto"`` exposes: one farm object, three tiers, each lane
settled by the cheapest engine whose preconditions hold.

Bit-identity contract
---------------------
Identical to the parent's, and guarded the same two ways:

* every floating-point expression in :meth:`_cf_settle` and
  :func:`_cf_edge_train` replicates the scalar engine's operation
  sequence exactly (same association, same operand order), so a lane
  completed here is bit-identical to a cold scalar settle;
* eligibility is decided by the same probe-verified physics tables the
  parent builds, and any runtime excursion (clamp window, solver
  failure, PFD anomaly) ejects the lane from its pre-event state for a
  scalar finish — correctness never depends on the fast path.

Lanes completed by this tier report ``mode == "closed_form"`` in their
:class:`~repro.sim.vectorized.LaneResult`; the parent's modes are
unchanged for lanes that fall through.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import List, Optional

import numpy as np

from repro.errors import ReproError
from repro.sim.vectorized import (
    _CONST,
    _END,
    _EXP,
    _FB,
    _RAMP,
    _REF,
    _RESET,
    _EdgeGroup,
    LaneResult,
    SettleLane,
    VectorizedLotSimulator,
)
from repro.stimulus.waveforms import PiecewiseConstantFrequencySource

__all__ = ["ClosedFormLotSimulator"]


def _cf_edge_train(source, t_end: float) -> Optional[List[float]]:
    """Fully-inlined edge generation for the multitone FSK source.

    A second transcription of
    :meth:`~repro.stimulus.waveforms.EdgeSourceBase.next_edge` over the
    piecewise-constant phase law — the same expressions, operation
    order and solver iteration as
    :func:`~repro.sim.vectorized._pcw_edge_train`, hence bit-identical
    edges — but with the phase/frequency closures flattened into the
    loop body and the linear segment scan replaced by
    :func:`bisect.bisect_left` over the segment end times.  The scan
    takes the first ``i`` with ``frac_t <= t1s[i]``; on the sorted
    ``t1s`` that is exactly ``bisect_left(t1s, frac_t)``, so the
    selected segment (and therefore every computed value) is unchanged.
    Each edge costs ~27 phase/frequency evaluations; removing the
    closure-call and scan overhead from each is what makes the
    closed-form tier's setup phase cheap.

    Returns ``None`` on any condition the generic path would treat as
    an error — the caller then falls back to the parent's generator.
    """
    if type(source) is not PiecewiseConstantFrequencySource:
        return None
    if source._k != 0 or source._t_last != source.start_time:
        return None
    start = source.start_time
    sched = source.schedule
    f0 = sched[0][0]
    cyc = source._cycle
    ppc = source._phase_per_cycle
    bounds = source._bounds
    n_seg = len(sched)
    t0s = [b[0] for b in bounds[:-1]]
    p0s = [b[1] for b in bounds[:-1]]
    t1s = [b[0] for b in bounds[1:]]
    fs = [f for f, _d in sched]
    floor = math.floor
    bisect = bisect_left

    edges: List[float] = []
    t_last = start
    k = 0
    while True:
        k += 1
        target = float(k)
        lo = t_last
        # f_lo = freq_at(lo)
        rel = lo - start
        if rel <= 0.0:
            f_lo = f0
        else:
            frac_t = rel - floor(rel / cyc) * cyc
            i = bisect(t1s, frac_t)
            f_lo = fs[i] if i < n_seg else f0
        if f_lo <= 0.0:
            return None
        hi = lo + 1.5 / f_lo
        for _ in range(64):
            # ph = phase_at(hi); the frequency at the same instant
            # shares rel/frac_t/i, so it rides along for free.
            rel = hi - start
            if rel <= 0.0:
                ph = rel * f0
                fq = f0
            else:
                cycles = floor(rel / cyc)
                frac_t = rel - cycles * cyc
                i = bisect(t1s, frac_t)
                if i < n_seg:
                    ph = (cycles * ppc + p0s[i]) + fs[i] * (frac_t - t0s[i])
                    fq = fs[i]
                else:
                    ph = (cycles * ppc + ppc) + f0 * 0.0
                    fq = f0
            if ph >= target:
                break
            lo = hi
            hi = lo + 1.5 / max(fq, 1e-12)
        else:
            return None
        # solve_increasing(phase_at, target, lo, hi, derivative=freq_at)
        f_hi_b = ph - target  # ph is phase_at(hi) from the bracket break
        # f_lo_b = phase_at(lo) - target
        rel = lo - start
        if rel <= 0.0:
            ph = rel * f0
        else:
            cycles = floor(rel / cyc)
            frac_t = rel - cycles * cyc
            i = bisect(t1s, frac_t)
            if i < n_seg:
                ph = (cycles * ppc + p0s[i]) + fs[i] * (frac_t - t0s[i])
            else:
                ph = (cycles * ppc + ppc) + f0 * 0.0
        f_lo_b = ph - target
        if f_lo_b > 0.0 or f_hi_b < 0.0:
            return None
        if f_lo_b == 0.0:
            t_edge = lo
        elif f_hi_b == 0.0:
            t_edge = hi
        else:
            x = 0.5 * (lo + hi)
            t_edge = None
            for _ in range(200):
                if hi - lo <= 1e-13:
                    t_edge = 0.5 * (lo + hi)
                    break
                # f_x = phase_at(x) - target, keeping the segment index
                # for the derivative below (freq_at(x) shares it).
                rel = x - start
                if rel <= 0.0:
                    ph = rel * f0
                    d = f0
                else:
                    cycles = floor(rel / cyc)
                    frac_t = rel - cycles * cyc
                    i = bisect(t1s, frac_t)
                    if i < n_seg:
                        ph = (cycles * ppc + p0s[i]) \
                            + fs[i] * (frac_t - t0s[i])
                        d = fs[i]
                    else:
                        ph = (cycles * ppc + ppc) + f0 * 0.0
                        d = f0
                f_x = ph - target
                if f_x == 0.0:
                    t_edge = x
                    break
                if f_x < 0.0:
                    lo = x
                else:
                    hi = x
                x_next = None
                if d > 0.0:
                    candidate = x - f_x / d
                    if lo < candidate < hi:
                        x_next = candidate
                if x_next is None:
                    x_next = 0.5 * (lo + hi)
                x = x_next
            if t_edge is None:
                return None
        if t_edge <= t_last and k > 1:
            return None
        t_last = t_edge
        if not edges and t_edge < 0.0:
            return None
        edges.append(t_edge)
        if t_edge > t_end:
            return edges


class ClosedFormLotSimulator(VectorizedLotSimulator):
    """The tiered farm: closed-form lanes first, then the parent.

    Construction is the parent's; on top of it every lane's physics
    table is classified once: a lane is *closed-form eligible* when its
    VCO tuning law is linear and every reachable (filter, drive) law is
    constant or ramp — i.e. no exponential segment can ever occur.
    Eligible lanes settle in :meth:`_cf_settle`; everything else (and
    any runtime ejection) flows through the inherited vectorized /
    scalar tiers unchanged.
    """

    def __init__(self, lanes, drain_width: int = 8,
                 lockstep_width: int = 64, measure_width=None):
        super().__init__(lanes, drain_width=drain_width,
                         lockstep_width=lockstep_width,
                         measure_width=measure_width)
        self.stats["closed_form"] = 0
        self._cf_ok = [
            (not t.nonlinear) and all(r.kind != _EXP for r in t.laws)
            for t in self._tables
        ]

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _generate_edges(self, lane: SettleLane,
                        t_end: float) -> Optional[_EdgeGroup]:
        """Try the inlined train first; fall back to the parent's path.

        Same runtime guard as the parent: the first edges are
        cross-checked against the real generator before being trusted.
        """
        try:
            source = lane.stimulus.make_source(lane.f_mod, 0.0)
            fast = _cf_edge_train(source, t_end)
            if fast:
                ok = True
                for i in range(min(2, len(fast))):
                    if source.next_edge() != fast[i]:
                        ok = False
                        break
                if ok:
                    return _EdgeGroup(np.asarray(fast, dtype=np.float64))
        except ReproError:
            pass
        return super()._generate_edges(lane, t_end)

    # ------------------------------------------------------------------
    # run: the tier cascade
    # ------------------------------------------------------------------
    def _run_farm(self) -> None:
        """Closed-form tier, then the inherited kernel/lockstep tiers.

        Eligible lanes always take :meth:`_cf_settle`, regardless of
        farm width — unlike lockstep it has no per-iteration overhead
        to amortise, so it beats the scalar drain even for a single
        lane.  Whatever is still active afterwards (ineligible physics;
        the parent re-applies its own drain/kernel/lockstep heuristics
        to exactly that population) falls through to ``super()``.
        """
        for i in np.flatnonzero(self._active).tolist():
            if self._cf_ok[i]:
                self._cf_settle(i)
        super()._run_farm()

    # ------------------------------------------------------------------
    # the closed-form settle loop
    # ------------------------------------------------------------------
    def _cf_settle(self, lane: int) -> None:
        """Settle one eligible lane with analytic per-edge updates.

        A specialisation of the parent's :meth:`_kernel_settle` with
        the exponential and nonlinear branches *removed at compile
        time* rather than skipped at runtime: between PFD events the
        control voltage is ``vc + slope*dt`` (ramp) or ``vc``
        (tri-stated), the phase advance is the closed-form quadratic
        ``base*dt + gain*(v0*dt + (slope/2*dt)*dt)``, and the
        feedback-edge instant comes from one division (constant law) or
        the safeguarded Newton iteration on the quadratic (ramp law) —
        every expression in the same operand order as the scalar
        engine, so a completed lane is bit-identical to a cold scalar
        settle.  Any state this loop cannot advance faithfully — a
        clamp-window excursion, a solver failure, any condition the
        scalar engine treats as an error — ejects the lane from its
        pre-event state for a scalar finish, exactly like the parent's
        ejections.
        """
        table = self._tables[lane]
        settle_end = float(self._settle_end[lane])
        edges = self._edges[lane].tolist()
        n_edges = len(edges)
        laws = [(r.kind, r.slope, r.half_slope, r.o_off)
                for r in table.laws]
        s_to_drive = table.s_to_drive
        base_hz = table.base_hz
        gain = table.gain
        f_center = table.f_center
        v_center = table.v_center
        f_min = table.f_min
        f_max = table.f_max
        v_lo = table.v_lo
        v_hi = table.v_hi
        nf = table.nf
        rdelay = table.reset_delay

        # Mutable loop state, unpacked from the arrays.
        t = float(self._t[lane])
        vc = float(self._vc[lane])
        phase = float(self._phase[lane])
        fbt = float(self._fbt[lane])
        j = int(self._j[lane])
        tref = float(self._tref[lane])
        up = bool(self._up[lane])
        dn = bool(self._dn[lane])

        def _opt(arr: np.ndarray) -> Optional[float]:
            v = float(arr[lane])
            return None if math.isnan(v) else v

        levt = _opt(self._levt)
        pres = _opt(self._pres)
        upr = _opt(self._upr)
        dnr = _opt(self._dnr)
        drive_idx = int(self._drive[lane])
        events = int(self._events[lane])

        l_kind, l_slope, l_half, l_ooff = laws[drive_idx]

        eject = False
        while True:
            # --- event selection (transcribes _next_event) ------------
            best_t = settle_end
            ekind = _END
            if tref <= best_t:
                best_t = tref
                ekind = _REF
            horizon = best_t
            if pres is not None and pres < horizon:
                horizon = pres
            dt_h = horizon - t
            if dt_h < 0.0:
                eject = True  # scalar raises "horizon precedes time"
                break
            need = fbt - phase
            if need <= 1e-9:
                if need < -1e-6:
                    eject = True  # scalar raises "overshot its target"
                    break
                if t <= best_t:
                    best_t = t
                    ekind = _FB
            elif dt_h > 0.0:
                if l_kind == _CONST:
                    # Tri-stated filter, linear VCO: one division.
                    f = f_center + gain * (vc - v_center)
                    f = min(max(f, f_min), f_max)
                    cand = need / f
                    if cand <= dt_h and t + cand <= best_t:
                        best_t = t + cand
                        ekind = _FB
                else:  # _RAMP: quadratic crossing, Newton-safeguarded
                    out_v = vc + l_ooff
                    v1 = out_v + l_slope * dt_h
                    va, vb = (v1, out_v) if v1 < out_v else (out_v, v1)
                    if not (v_lo <= va and vb <= v_hi):
                        eject = True  # clamp excursion mid-solve
                        break
                    pa_hi = base_hz * dt_h + gain * (
                        out_v * dt_h + (l_half * dt_h) * dt_h)
                    dt_fb = None
                    if pa_hi >= need:
                        # solve_increasing(pa, need, 0.0, dt_h):
                        # pa(0) == 0 so f_lo = -need < 0 always.
                        if pa_hi == need:
                            dt_fb = dt_h
                        else:
                            lo = 0.0
                            hi = dt_h
                            x_s = 0.5 * (lo + hi)
                            for _ in range(200):
                                if hi - lo <= 1e-13:
                                    dt_fb = 0.5 * (lo + hi)
                                    break
                                v1 = out_v + l_slope * x_s
                                va, vb = (v1, out_v) \
                                    if v1 < out_v else (out_v, v1)
                                if not (v_lo <= va and vb <= v_hi):
                                    eject = True
                                    break
                                pa_x = base_hz * x_s + gain * (
                                    out_v * x_s + (l_half * x_s) * x_s)
                                f_x = pa_x - need
                                if f_x == 0.0:
                                    dt_fb = x_s
                                    break
                                if f_x < 0.0:
                                    lo = x_s
                                else:
                                    hi = x_s
                                # Newton candidate off the ramp's
                                # instantaneous frequency.
                                v_d = out_v + l_slope * x_s
                                f_d = f_center + gain * (v_d - v_center)
                                f_d = min(max(f_d, f_min), f_max)
                                x_next = None
                                if f_d > 0.0:
                                    candidate = x_s - f_x / f_d
                                    if lo < candidate < hi:
                                        x_next = candidate
                                if x_next is None:
                                    x_next = 0.5 * (lo + hi)
                                x_s = x_next
                            else:
                                eject = True  # scalar: ConvergenceError
                            if eject:
                                break
                    if dt_fb is not None and t + dt_fb <= best_t:
                        best_t = t + dt_fb
                        ekind = _FB
            if pres is not None and pres <= best_t:
                best_t = pres
                ekind = _RESET

            # --- dispatch validity (checks only, pre-commit) ----------
            if ekind != _END:
                if levt is not None and best_t < levt:
                    eject = True  # PFD monotonicity violation
                    break
                if ekind == _RESET:
                    if upr is None or dnr is None:
                        eject = True  # reset with no cycle in flight
                        break
                else:
                    if pres is not None and best_t >= pres:
                        eject = True  # edge after pending reset was due
                        break
                    if ekind == _REF and j + 1 >= n_edges:
                        eject = True  # edge train exhausted (bug guard)
                        break

            # --- advance (closed form: ramp or hold) ------------------
            dt = best_t - t
            if dt > 0.0:
                if l_kind == _RAMP:
                    ov = vc + l_ooff
                    v1 = ov + l_slope * dt
                    va, vb = (v1, ov) if v1 < ov else (ov, v1)
                    if not (v_lo <= va and vb <= v_hi):
                        eject = True
                        break
                    pa = base_hz * dt + gain * (
                        ov * dt + (l_half * dt) * dt)
                    vc = vc + l_slope * dt
                else:
                    if not (v_lo <= vc and vc <= v_hi):
                        eject = True
                        break
                    pa = base_hz * dt + gain * (vc * dt)
                phase = phase + pa
            t = best_t

            # --- commit the dispatch ----------------------------------
            if ekind == _END:
                break
            events += 1
            levt = best_t
            if ekind == _REF:
                if not up:
                    up = True
                    upr = best_t
                    if dn:
                        pres = best_t + rdelay
                j += 1
                tref = edges[j]
            elif ekind == _FB:
                phase = fbt
                fbt = fbt + nf
                if not dn:
                    dn = True
                    dnr = best_t
                    if up:
                        pres = best_t + rdelay
            else:  # _RESET
                up = False
                dn = False
                pres = None
            new_idx = s_to_drive[(1 if up else 0) + (2 if dn else 0)]
            if new_idx != drive_idx:
                drive_idx = new_idx
                l_kind, l_slope, l_half, l_ooff = laws[drive_idx]

        # Write the locals back so _materialize sees this state (the
        # pre-event state on ejection; the finished state otherwise).
        self._t[lane] = t
        self._vc[lane] = vc
        self._phase[lane] = phase
        self._fbt[lane] = fbt
        self._j[lane] = j
        self._tref[lane] = tref
        self._up[lane] = up
        self._dn[lane] = dn
        nan = float("nan")
        self._levt[lane] = nan if levt is None else levt
        self._pres[lane] = nan if pres is None else pres
        self._upr[lane] = nan if upr is None else upr
        self._dnr[lane] = nan if dnr is None else dnr
        self._drive[lane] = drive_idx
        self._events[lane] = events
        if eject:
            self._hand_off(lane, "ejected")
            return
        self._active[lane] = False
        self._results[self._vec[lane]] = LaneResult(
            snapshot=self._materialize(lane), mode="closed_form",
            nonlinear=False,
        )
