"""Blocking client for the sweep-job service socket.

:class:`ServiceClient` is the thin synchronous counterpart of
:class:`~repro.service.server.SweepJobServer`: one short-lived
connection per operation, JSON line out, JSON line(s) back.  It speaks
either transport — a unix socket path or a TCP ``host:port`` endpoint;
the wire bytes are identical.  It is what the ``submit`` / ``watch`` /
``status`` CLI commands are built on, and what a test-floor script
would import — no asyncio required on the client side.

``watch`` is a generator: it yields each event dict as the line
arrives, so a caller sees tones while the sweep is still running, and
returns after the terminal event when the server closes the stream.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Iterator, Optional, Union

from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.service.events import TERMINAL_EVENTS
from repro.service.jobs import SweepJobSpec
from repro.service.protocol import (
    MAX_LINE_BYTES,
    encode_line,
    parse_tcp_endpoint,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a running :class:`SweepJobServer` over either transport.

    Parameters
    ----------
    socket_path:
        The unix socket path the server bound (the ``serve`` command's
        ``--socket``).
    timeout_s:
        Per-connection socket timeout.  ``watch`` applies it per line,
        so a healthy stream with slow tones is fine; a dead server
        raises instead of hanging the test floor forever.
    tcp:
        A ``"host:port"`` endpoint the server bound (the ``serve``
        command's ``--tcp``).  Exactly one of ``socket_path`` / ``tcp``
        must be given — one client object speaks one transport.
    """

    def __init__(
        self,
        socket_path: Optional[Union[str, os.PathLike]] = None,
        timeout_s: Optional[float] = 60.0,
        tcp: Optional[str] = None,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ConfigurationError(
                "give exactly one of socket_path (unix transport) or "
                "tcp='host:port' (TCP transport)"
            )
        self.socket_path = (
            os.fspath(socket_path) if socket_path is not None else None
        )
        self.tcp_endpoint = (
            parse_tcp_endpoint(tcp) if tcp is not None else None
        )
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def submit(self, spec: SweepJobSpec) -> dict:
        """Submit one job; returns its accepted snapshot (``job_id`` …)."""
        return self._roundtrip({"op": "submit", "spec": spec.to_dict()})

    def watch(self, job_id: str) -> Iterator[dict]:
        """Stream a job's events; ends after the terminal event.

        Only lines *without* an ``event`` key are error replies (unknown
        job, malformed request).  Event lines pass through verbatim —
        including failed-tone events, which carry ``ok: false`` as
        *data* (the tone died, the job marches on) and must reach the
        watcher rather than abort the stream.
        """
        with self._connect() as sock:
            sock.sendall(encode_line({"op": "watch", "job_id": job_id}))
            for payload in self._lines(sock):
                if payload.get("ok") is False and "event" not in payload:
                    raise ServiceError(payload.get("error", "watch failed"))
                yield payload
                if payload.get("event") in TERMINAL_EVENTS:
                    return

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; returns the job's current snapshot."""
        return self._roundtrip({"op": "cancel", "job_id": job_id})

    def status(self) -> dict:
        """The service's ``/status`` snapshot (queue, cache, throughput)."""
        return self._roundtrip({"op": "status"})

    def jobs(self) -> list:
        """Snapshots of every job this service session, oldest first."""
        return self._roundtrip({"op": "jobs"})["jobs"]

    def report(self, job_id: str) -> str:
        """The finished job's markdown artefact (report or failure stub)."""
        return self._roundtrip({"op": "report", "job_id": job_id})["report"]

    def shutdown(self) -> dict:
        """Ask the server to drain and exit."""
        return self._roundtrip({"op": "shutdown"})

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.tcp_endpoint is not None:
            family = socket.AF_INET
            address = self.tcp_endpoint
            shown = "{}:{}".format(*self.tcp_endpoint)
        else:
            family = socket.AF_UNIX
            address = self.socket_path
            shown = self.socket_path
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.settimeout(self.timeout_s)
        try:
            sock.connect(address)
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot reach service at {shown!r}: {exc} "
                "(is `python -m repro serve` running?)"
            ) from exc
        return sock

    def _roundtrip(self, request: dict) -> dict:
        with self._connect() as sock:
            sock.sendall(encode_line(request))
            for payload in self._lines(sock):
                if payload.get("ok") is False:
                    raise ServiceError(payload.get("error", "request failed"))
                return payload
        raise ServiceError("service closed the connection without replying")

    @staticmethod
    def _lines(sock: socket.socket) -> Iterator[dict]:
        """Yield decoded JSON lines until the server closes the stream."""
        buffer = b""
        while True:
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line.decode("utf-8"))
            chunk = sock.recv(65536)
            if not chunk:
                if buffer.strip():
                    yield json.loads(buffer.decode("utf-8"))
                return
            buffer += chunk
            if len(buffer) > MAX_LINE_BYTES:
                raise ReproError(
                    f"service reply line exceeds {MAX_LINE_BYTES} bytes"
                )
