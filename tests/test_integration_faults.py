"""Integration: the test's purpose — faulty loops fail the limits.

The paper motivates transfer-function monitoring as a structural test:
parameters extracted from the measured response "will indicate errors in
the PLL circuitry".  These tests inject macro faults and confirm the
go/no-go verdict flips.
"""

import pytest

from repro.analysis.second_order import SecondOrderParameters
from repro.core.limits import TestLimits
from repro.core.monitor import SweepPlan, TransferFunctionMonitor
from repro.pll.faults import Fault, FaultKind, apply_fault
from repro.presets import paper_pll
from repro.stimulus import SineFMStimulus


@pytest.fixture(scope="module")
def limits():
    pll = paper_pll()
    golden = SecondOrderParameters(pll.natural_frequency(), pll.damping())
    return TestLimits.from_golden(golden, rel_tol=0.25, peak_tol_db=1.5)


@pytest.fixture(scope="module")
def plan():
    # A lean sweep: enough tones to anchor peak + skirt.
    return SweepPlan((1.0, 2.5, 5.0, 7.0, 9.0, 12.0, 18.0, 30.0, 55.0))


def run_check(pll, plan, limits, fast_bist_config):
    monitor = TransferFunctionMonitor(
        pll, SineFMStimulus(1000.0, 1.0), fast_bist_config
    )
    return monitor.run_and_check(plan, limits)


class TestGoNoGo:
    def test_healthy_device_passes(self, plan, limits, fast_bist_config):
        __, report = run_check(paper_pll(), plan, limits, fast_bist_config)
        assert report.passed, str(report)

    def test_vco_gain_half_fails_on_fn(self, plan, limits, fast_bist_config):
        faulty = apply_fault(
            paper_pll(), Fault(FaultKind.VCO_GAIN_SHIFT, 0.5)
        )
        __, report = run_check(faulty, plan, limits, fast_bist_config)
        assert not report.passed
        assert any(c.name == "fn_hz" for c in report.failures)

    def test_r2_collapse_fails_on_peaking(self, plan, limits,
                                          fast_bist_config):
        faulty = apply_fault(paper_pll(), Fault(FaultKind.R2_SHIFT, 0.1))
        __, report = run_check(faulty, plan, limits, fast_bist_config)
        assert not report.passed
        failed = {c.name for c in report.failures}
        assert "peak_db" in failed or "zeta" in failed

    def test_cap_tripled_fails(self, plan, limits, fast_bist_config):
        faulty = apply_fault(paper_pll(), Fault(FaultKind.CAP_SHIFT, 3.0))
        __, report = run_check(faulty, plan, limits, fast_bist_config)
        assert not report.passed

    def test_fault_shifts_match_theory_direction(
        self, plan, fast_bist_config
    ):
        """Halving Ko must *lower* the measured fn by ~sqrt(2)."""
        healthy_mon = TransferFunctionMonitor(
            paper_pll(), SineFMStimulus(1000.0, 1.0), fast_bist_config
        )
        faulty = apply_fault(
            paper_pll(), Fault(FaultKind.VCO_GAIN_SHIFT, 0.5)
        )
        faulty_mon = TransferFunctionMonitor(
            faulty, SineFMStimulus(1000.0, 1.0), fast_bist_config
        )
        est_h = healthy_mon.run(plan).estimated
        est_f = faulty_mon.run(plan).estimated
        assert est_f is not None and est_h is not None
        ratio = est_f.fn_hz / est_h.fn_hz
        assert ratio == pytest.approx(1.0 / 2.0 ** 0.5, rel=0.15)
