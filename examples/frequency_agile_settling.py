"""Channel-hop settling of a frequency-agile synthesizer.

The paper's third motivating application: "generation of frequency
agile RF carriers for use in FDMA based communications systems".  For
such a synthesizer the commercially interesting number is the *channel
switch time* — and Section 1's point is that the (fn, ζ) the BIST
measures "relate directly to the time domain response".

This example demonstrates that link quantitatively:

1. the BIST measures (fn, ζ) on the working synthesizer;
2. the with-zero second-order model predicts the post-hop settling
   envelope from those two numbers;
3. an actual channel hop is simulated and its measured settling time is
   compared against the prediction.

Run:  python examples/frequency_agile_settling.py
"""

import math

from repro import TransferFunctionMonitor, paper_pll
from repro.analysis import SecondOrderParameters
from repro.core.monitor import SweepPlan
from repro.pll.simulator import PLLTransientSimulator
from repro.presets import paper_bist_config
from repro.reporting import format_table
from repro.stimulus import SineFMStimulus
from repro.stimulus.waveforms import StepFrequencySource

HOP_HZ = 20.0          # reference step: a "channel" 20 Hz away
SETTLE_BAND = 0.05     # settled when within 5% of the hop


def measure_parameters(pll):
    plan = SweepPlan((1.0, 2.5, 4.0, 5.5, 7.0, 9.0, 12.0, 18.0, 30.0))
    monitor = TransferFunctionMonitor(
        pll, SineFMStimulus(1000.0, 1.0), paper_bist_config()
    )
    return monitor.run(plan).estimated


def simulate_hop(pll):
    """Hop the reference by HOP_HZ and time the output's entry into the
    settle band (measured on the capacitor node = mean VCO frequency)."""
    t_hop = 0.5
    source = StepFrequencySource(
        pll.f_ref, pll.f_ref + HOP_HZ, step_time=t_hop
    )
    sim = PLLTransientSimulator(pll, source)
    sim.run_until(t_hop + 1.5)
    f_target = pll.n * (pll.f_ref + HOP_HZ)
    band = SETTLE_BAND * pll.n * HOP_HZ
    t, v = sim.cap_trace.as_arrays()
    freq = pll.vco.f_center + pll.vco.gain_hz_per_v * (v - pll.vco.v_center)
    # Last time the output was OUTSIDE the band = settling time.
    outside = [
        ti for ti, fi in zip(t, freq)
        if ti > t_hop and abs(fi - f_target) > band
    ]
    return (outside[-1] - t_hop) if outside else 0.0


def main() -> None:
    pll = paper_pll()

    est = measure_parameters(pll)
    print(f"BIST measurement: fn = {est.fn_hz:.2f} Hz, "
          f"zeta = {est.zeta:.3f}\n")

    # Predicted settling from the measured parameters: the envelope of
    # the with-zero step response decays as exp(-zeta*wn*t).
    measured = SecondOrderParameters(2 * math.pi * est.fn_hz, est.zeta)
    sigma = measured.zeta * measured.wn
    # Initial envelope amplitude for the with-zero response is
    # ~sqrt(1+(2zeta)^2)/sqrt(1-zeta^2); solve envelope = SETTLE_BAND.
    amp = math.sqrt(1 + (2 * measured.zeta) ** 2) / math.sqrt(
        max(1 - measured.zeta ** 2, 1e-9)
    )
    t_predicted = math.log(amp / SETTLE_BAND) / sigma

    t_simulated = simulate_hop(pll)

    print(format_table(
        ["quantity", "value"],
        [
            ["channel hop", f"{HOP_HZ:g} Hz reference "
                            f"({pll.n * HOP_HZ:g} Hz at the output)"],
            ["settle band", f"±{SETTLE_BAND:.0%} of the hop"],
            ["predicted settle (from BIST fn, zeta)",
             f"{t_predicted * 1e3:.1f} ms"],
            ["simulated settle (actual hop transient)",
             f"{t_simulated * 1e3:.1f} ms"],
            ["ratio", f"{t_simulated / t_predicted:.2f}"],
        ],
        title="Frequency-agile settling: prediction vs transient",
    ))
    print(
        "\nThe two digital-only BIST numbers (fn, zeta) predict the "
        "channel-switch\ntime of the synthesizer — the paper's claim that "
        "the transfer function\n'relates directly to the time domain "
        "response', demonstrated."
    )


if __name__ == "__main__":
    main()
