"""Frequency dividers.

Two digital dividers appear in the paper's architecture (Figures 2, 4
and 6): the PLL feedback divider ``/N`` and the reference divider, plus
the **ring counter** inside the DCO stimulus generator whose modulus is
re-programmed on the fly to hop between FM tones.

Both are modelled as edge processors: feed input rising edges, get
output edges.  The closed-loop simulator folds the feedback divider into
VCO phase arithmetic for speed (one solve per divided edge rather than
per VCO cycle); these classes are the explicit digital view used by the
BIST logic, the DCO, and the tests that check the two views agree.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.events import Edge, EdgeKind
from repro.sim.signals import EdgeStream

__all__ = ["EdgeDivider", "RingCounterDivider"]


class EdgeDivider:
    """Divide-by-N counter clocked by input rising edges.

    The output rises on every N-th input rising edge and falls
    ``ceil(N/2)`` input edges later, giving a roughly square output.
    Only rising edges carry timing information for the PFD and the
    counters, so the falling-edge placement is a display nicety.

    A divide-by-one is the identity and needs no divider; use the input
    stream directly, so ``modulus >= 2`` here.

    Parameters
    ----------
    modulus:
        Division ratio N >= 2.
    phase:
        Initial counter value in ``[0, modulus)``; the first output
        rising edge occurs after ``modulus - phase`` input edges
        (``phase == 0`` rises on the very first edge).
    """

    def __init__(self, modulus: int, phase: int = 0, name: str = "div") -> None:
        if modulus < 2:
            raise ConfigurationError(f"modulus must be >= 2, got {modulus!r}")
        if not (0 <= phase < modulus):
            raise ConfigurationError(
                f"phase must be in [0, {modulus}), got {phase!r}"
            )
        self.modulus = modulus
        self.name = name
        self._count = phase
        self._high = False
        self._half = (modulus + 1) // 2
        self.output = EdgeStream(f"{name}.out")

    @property
    def count(self) -> int:
        """Current counter value."""
        return self._count

    def on_input_edge(self, time: float) -> Optional[Edge]:
        """Process one input rising edge; return the output edge, if any."""
        produced: Optional[Edge] = None
        if self._count == 0:
            if self._high:
                # Can only happen with phase tricks; complete the pulse
                # before re-rising so the stream stays alternating.
                self.output.record(time, EdgeKind.FALLING)
            self._high = True
            self.output.record(time, EdgeKind.RISING)
            produced = Edge(time, self.output.net, EdgeKind.RISING)
        elif self._high and self._count == self._half:
            self._high = False
            self.output.record(time, EdgeKind.FALLING)
            produced = Edge(time, self.output.net, EdgeKind.FALLING)
        self._count = (self._count + 1) % self.modulus
        return produced

    def reset(self, phase: int = 0) -> None:
        """Restart the counter at ``phase`` without touching the record."""
        if not (0 <= phase < self.modulus):
            raise ConfigurationError(
                f"phase must be in [0, {self.modulus}), got {phase!r}"
            )
        self._count = phase


class RingCounterDivider:
    """A divider whose modulus can be re-programmed between output edges.

    This is the paper's Figure 4 "N-bit digital ring counter": the DCO
    derives each discrete FM tone by dividing a fast master clock by an
    integer, and the mux switching control re-programs that integer to
    hop tones.  Re-programming takes effect at the next output rising
    edge, exactly like reloading a hardware ring counter, so output
    periods are always whole multiples of the master-clock period.

    For speed this class works directly in the time domain of an ideal
    master clock of frequency ``f_master``: output rising edges land on
    master-clock ticks.
    """

    def __init__(self, f_master: float, modulus: int, start_time: float = 0.0,
                 name: str = "ring") -> None:
        if f_master <= 0.0:
            raise ConfigurationError(f"f_master must be positive, got {f_master!r}")
        if modulus < 2:
            raise ConfigurationError(
                f"ring counter modulus must be >= 2, got {modulus!r}"
            )
        self.f_master = f_master
        self.name = name
        self._modulus = modulus
        self._next_modulus = modulus
        # Output edges land on integer master ticks; track tick index.
        self._tick = round(start_time * f_master)

    @property
    def modulus(self) -> int:
        """Modulus in force for the next output period."""
        return self._next_modulus

    @property
    def output_frequency(self) -> float:
        """Frequency of the tone currently programmed."""
        return self.f_master / self._next_modulus

    def program(self, modulus: int) -> None:
        """Select the modulus for subsequent output periods."""
        if modulus < 2:
            raise ConfigurationError(
                f"ring counter modulus must be >= 2, got {modulus!r}"
            )
        self._next_modulus = modulus

    def snapshot_state(self) -> "tuple":
        """Scalar counter state (modulus in force, programmed, tick)."""
        return (self._modulus, self._next_modulus, self._tick)

    def restore_state(self, state: "tuple") -> None:
        """Adopt a state captured by :meth:`snapshot_state`."""
        self._modulus, self._next_modulus, self._tick = state

    def next_edge(self) -> float:
        """Time of the next output rising edge; advances the counter."""
        self._modulus = self._next_modulus
        self._tick += self._modulus
        return self._tick / self.f_master

    def peek_next_edge(self) -> float:
        """Time the next rising edge would occur, without advancing."""
        return (self._tick + self._next_modulus) / self.f_master
