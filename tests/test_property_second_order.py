"""Property-based tests: second-order relations and counters."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.second_order import (
    SecondOrderParameters,
    closed_loop_with_zero,
    damping_from_peaking_db,
    peaking_db_with_zero,
)
from repro.core.counters import FrequencyCounter, PhaseCounter
from repro.sim.signals import PulseTrain

zetas = st.floats(min_value=0.08, max_value=10.0)
wns = st.floats(min_value=0.1, max_value=1e6)


class TestSecondOrderProperties:
    @given(zeta=zetas)
    def test_peaking_positive(self, zeta):
        assert peaking_db_with_zero(zeta) > 0.0

    @given(zeta=zetas)
    @settings(max_examples=50, deadline=None)
    def test_peaking_inversion_roundtrip(self, zeta):
        peak = peaking_db_with_zero(zeta)
        recovered = damping_from_peaking_db(peak)
        assert math.isclose(recovered, zeta, rel_tol=1e-4)

    @given(wn=wns, zeta=zetas)
    def test_w3db_above_peak_frequency(self, wn, zeta):
        p = SecondOrderParameters(wn, zeta)
        assert p.w3db > p.peak_frequency

    @given(wn=wns, zeta=zetas)
    def test_w3db_is_exact_half_power(self, wn, zeta):
        p = SecondOrderParameters(wn, zeta)
        assert abs(abs(p.response(p.w3db)) - 1 / math.sqrt(2)) < 1e-9

    @given(wn=wns, zeta=zetas)
    @settings(max_examples=50, deadline=None)
    def test_magnitude_monotone_beyond_3db(self, wn, zeta):
        """Past the 3 dB corner the with-zero magnitude keeps falling."""
        p = SecondOrderParameters(wn, zeta)
        w = np.linspace(p.w3db, 50 * p.w3db, 200)
        mags = np.abs(closed_loop_with_zero(wn, zeta, w))
        assert np.all(np.diff(mags) < 1e-12)

    @given(wn=wns, zeta=zetas)
    def test_scaling_invariance(self, wn, zeta):
        """Peaking depends only on zeta, never on wn."""
        p1 = SecondOrderParameters(wn, zeta)
        p2 = SecondOrderParameters(wn * 7.3, zeta)
        assert math.isclose(p1.peaking_db, p2.peaking_db, rel_tol=1e-9)
        assert math.isclose(
            p1.w3db / p1.wn, p2.w3db / p2.wn, rel_tol=1e-9
        )


class TestCounterProperties:
    @given(
        f_true=st.floats(min_value=100.0, max_value=5000.0),
        periods=st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_reciprocal_error_within_reported_resolution(
        self, f_true, periods
    ):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = PulseTrain("x")
        for k in range(periods + 4):
            edges.record((k + 1) / f_true)
        m = fc.measure_reciprocal(edges, start=0.0, periods=periods)
        assert abs(m.frequency_hz - f_true) <= m.resolution_hz + 1e-9

    @given(
        f_true=st.floats(min_value=100.0, max_value=5000.0),
        gate=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_gated_error_within_one_count(self, f_true, gate):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = PulseTrain("x")
        n = int(f_true * (gate + 1.0)) + 4
        for k in range(n):
            edges.record((k + 1) / f_true)
        m = fc.measure_gated(edges, start=0.2, gate_seconds=gate)
        assert abs(m.frequency_hz - f_true) <= m.resolution_hz + 1e-9

    @given(
        t0=st.floats(min_value=0.0, max_value=10.0),
        dt=st.floats(min_value=0.0, max_value=1.0),
        clock=st.floats(min_value=1e3, max_value=1e8),
    )
    @settings(max_examples=50, deadline=None)
    def test_phase_counter_within_one_tick(self, t0, dt, clock):
        pc = PhaseCounter(test_clock_hz=clock)
        pc.start(t0)
        count = pc.stop(t0 + dt)
        assert abs(count.elapsed_seconds - dt) <= 1.0 / clock + 1e-12
