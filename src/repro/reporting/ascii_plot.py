"""Terminal line plots for Bode responses.

Good enough to eyeball the Figure 10–12 shapes straight from the
benchmark output: log-frequency x-axis, one character per sample, one
letter per series.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ascii_series", "ascii_bode"]


def ascii_series(
    series: Sequence[Tuple[str, np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 18,
    x_log: bool = True,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot ``(label, x, y)`` series on one character grid.

    Each series is drawn with the first letter of its label; collisions
    show the later series.  Axis extremes are annotated.
    """
    if not series:
        raise ValueError("nothing to plot")
    xs = np.concatenate([np.asarray(x, dtype=float) for __, x, _y in series])
    ys = np.concatenate([np.asarray(y, dtype=float) for __, _x, y in series])
    if x_log:
        if np.any(xs <= 0.0):
            raise ValueError("log x-axis requires positive x values")
        xs = np.log10(xs)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, x, y in series:
        mark = (label or "*")[0]
        x_arr = np.asarray(x, dtype=float)
        if x_log:
            x_arr = np.log10(x_arr)
        y_arr = np.asarray(y, dtype=float)
        for xv, yv in zip(x_arr, y_arr):
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y_hi - yv) / (y_hi - y_lo) * (height - 1)))
            grid[row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "".join(grid[-1]))
    x_lo_label = 10.0 ** x_lo if x_log else x_lo
    x_hi_label = 10.0 ** x_hi if x_log else x_hi
    footer = f"{x_lo_label:.3g}"
    pad = width - len(footer) - len(f"{x_hi_label:.3g}")
    lines.append(" " * 12 + footer + " " * max(pad, 1) + f"{x_hi_label:.3g}")
    legend = "   ".join(f"{(label or '*')[0]} = {label}" for label, __, _y in series)
    lines.append(f"{y_label}   [{legend}]" if y_label else f"[{legend}]")
    return "\n".join(lines)


def ascii_bode(
    responses: Sequence["object"],
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Magnitude and phase panels for a set of
    :class:`~repro.analysis.bode.BodeResponse` objects."""
    mag = ascii_series(
        [(r.label, r.frequencies_hz, r.magnitude_db) for r in responses],
        width=width, height=height, title=f"{title} — magnitude (dB)",
        y_label="dB",
    )
    phase = ascii_series(
        [(r.label, r.frequencies_hz, r.phase_deg) for r in responses],
        width=width, height=height, title=f"{title} — phase (deg)",
        y_label="deg",
    )
    return mag + "\n\n" + phase
