"""Loop design: from target (fn, ζ) to component values.

The forward direction (components → fn, ζ) is eqs. (5)–(6); a designer
works backwards: given the reference, divider, a capacitor choice and a
VCO gain, pick R1 and R2 to land on a wanted natural frequency and
damping.  For the Figure 9 lag-lead loop the inversion is closed-form::

    ωn² = Kd·Ko / (N·(τ1 + τ2))   →   τ1 + τ2 = Kd·Ko / (N·ωn²)
    ζ  = ωn·τ2 / 2                →   τ2 = 2ζ/ωn,   τ1 = rest

with ``R2 = τ2/C`` and ``R1 = τ1/C``.  The current-mode series-RC loop
inverts even more directly (``C = Kd·Ko/(N·ωn²)``, ``R = 2ζ/(ωn·C)``).

Both helpers return fully assembled
:class:`~repro.pll.config.ChargePumpPLL` objects whose derived
parameters round-trip to the requested targets, and both validate
physical realisability (τ1 must stay positive, the VCO range must cover
the lock point).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.pll.charge_pump import CurrentChargePump, RailDriverChargePump
from repro.pll.config import ChargePumpPLL
from repro.pll.loop_filter import PassiveLagLeadFilter, SeriesRCFilter
from repro.pll.vco import VCO

__all__ = ["design_lag_lead_pll", "design_series_rc_pll"]


def _check_targets(f_ref: float, n: int, fn_hz: float, zeta: float) -> None:
    if f_ref <= 0.0:
        raise ConfigurationError(f"f_ref must be positive, got {f_ref!r}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n!r}")
    if fn_hz <= 0.0:
        raise ConfigurationError(f"fn_hz must be positive, got {fn_hz!r}")
    if zeta <= 0.0:
        raise ConfigurationError(f"zeta must be positive, got {zeta!r}")
    if fn_hz > f_ref / 10.0:
        raise ConfigurationError(
            f"fn {fn_hz!r} Hz is above f_ref/10 ({f_ref / 10.0!r} Hz); the "
            "once-per-cycle sampling of a CP-PLL is not well modelled by "
            "the continuous-time equations there"
        )


def design_lag_lead_pll(
    f_ref: float,
    n: int,
    fn_hz: float,
    zeta: float,
    c: float = 470e-9,
    vdd: float = 5.0,
    vco_gain_hz_per_v: float = 1200.0,
    name: Optional[str] = None,
) -> ChargePumpPLL:
    """A rail-driver + Figure 9 lag-lead loop hitting (fn, ζ) exactly.

    Parameters mirror the free choices a designer makes: the capacitor,
    supply and VCO gain; R1 and R2 fall out of the eqs. (5)–(6)
    inversion.

    Raises
    ------
    ConfigurationError
        If the targets are unreachable with this capacitor/gain — most
        commonly ζ so large that ``τ2 = 2ζ/ωn`` exceeds the whole
        ``τ1 + τ2`` budget, which needs a smaller C or a larger Ko.
    """
    _check_targets(f_ref, n, fn_hz, zeta)
    if c <= 0.0:
        raise ConfigurationError(f"c must be positive, got {c!r}")
    wn = 2.0 * math.pi * fn_hz
    kd = vdd / (4.0 * math.pi)
    ko = 2.0 * math.pi * vco_gain_hz_per_v
    tau_total = kd * ko / (n * wn * wn)
    tau2 = 2.0 * zeta / wn
    tau1 = tau_total - tau2
    if tau1 <= 0.0:
        raise ConfigurationError(
            f"targets unreachable: tau2 = {tau2:.4g}s exceeds the total "
            f"tau budget {tau_total:.4g}s (raise Ko, lower zeta, or lower "
            "fn)"
        )
    r1 = tau1 / c
    r2 = tau2 / c
    f_center = n * f_ref
    swing = vco_gain_hz_per_v * vdd / 2.0
    f_min = max(f_center - swing, f_center * 0.05)
    vco = VCO(
        f_center=f_center,
        gain_hz_per_v=vco_gain_hz_per_v,
        v_center=vdd / 2.0,
        f_min=f_min,
        f_max=f_center + swing,
    )
    return ChargePumpPLL(
        pump=RailDriverChargePump(vdd=vdd),
        loop_filter=PassiveLagLeadFilter(r1=r1, r2=r2, c=c),
        vco=vco,
        n=n,
        f_ref=f_ref,
        name=name or f"designed-laglead-fn{fn_hz:g}-z{zeta:g}",
    )


def design_series_rc_pll(
    f_ref: float,
    n: int,
    fn_hz: float,
    zeta: float,
    pump_current: float = 50e-6,
    vco_gain_hz_per_v: float = 100e3,
    v_center: float = 1.5,
    name: Optional[str] = None,
) -> ChargePumpPLL:
    """A current-steering + series-RC (type 2) loop hitting (fn, ζ).

    ``C = Kd·Ko/(N·ωn²)`` and ``R = 2ζ/(ωn·C)`` — the textbook
    charge-pump design equations.
    """
    _check_targets(f_ref, n, fn_hz, zeta)
    if pump_current <= 0.0:
        raise ConfigurationError(
            f"pump_current must be positive, got {pump_current!r}"
        )
    wn = 2.0 * math.pi * fn_hz
    kd = pump_current / (2.0 * math.pi)
    ko = 2.0 * math.pi * vco_gain_hz_per_v
    c = kd * ko / (n * wn * wn)
    r = 2.0 * zeta / (wn * c)
    f_center = n * f_ref
    swing = min(vco_gain_hz_per_v * v_center, 0.8 * f_center)
    vco = VCO(
        f_center=f_center,
        gain_hz_per_v=vco_gain_hz_per_v,
        v_center=v_center,
        f_min=f_center - swing,
        f_max=f_center + swing,
    )
    return ChargePumpPLL(
        pump=CurrentChargePump(i_up=pump_current),
        loop_filter=SeriesRCFilter(r=r, c=c),
        vco=vco,
        n=n,
        f_ref=f_ref,
        name=name or f"designed-seriesrc-fn{fn_hz:g}-z{zeta:g}",
    )
