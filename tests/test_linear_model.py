"""Component-level linear model vs the eq. (4) idealisation."""

import math

import numpy as np
import pytest

from repro.analysis.bode import log_frequency_grid
from repro.analysis.linear_model import PLLLinearModel
from repro.pll.faults import Fault, FaultKind, apply_fault
from repro.presets import paper_pll


@pytest.fixture(scope="module")
def model():
    return PLLLinearModel(paper_pll())


class TestTransferFunctions:
    def test_closed_loop_dc_gain_n(self, model):
        h = model.closed_loop(1j * 1e-4)
        assert abs(h) == pytest.approx(model.pll.n, rel=1e-3)

    def test_normalised_dc_unity(self, model):
        h = model.closed_loop_normalised(1j * 1e-4)
        assert abs(h) == pytest.approx(1.0, rel=1e-3)

    def test_error_plus_closed_is_identity(self, model):
        """1/(1+G) + G/(1+G) = 1 at every frequency."""
        w = np.logspace(-1, 3, 50)
        s = 1j * w
        total = model.error_transfer(s) + model.closed_loop(s) / model.pll.n
        assert np.allclose(total, 1.0, atol=1e-9)

    def test_error_transfer_high_pass(self, model):
        lo = abs(model.error_transfer(1j * 0.1))
        hi = abs(model.error_transfer(1j * 1e4))
        assert lo < 0.01
        assert hi == pytest.approx(1.0, rel=1e-3)


class TestSecondOrderAgreement:
    def test_component_model_matches_eq4_at_design_point(self, model):
        """The exact component H and the eq. (4) idealisation agree to
        within ~1 dB at this loop gain (the finite-K terms eq. 4 drops
        are worth ~0.8 dB at the peak), and their peaks land at nearly
        the same frequency."""
        f = log_frequency_grid(1.0, 60.0, 80)
        exact = model.bode(f)
        ideal = model.bode_second_order(f)
        assert np.allclose(exact.magnitude_db, ideal.magnitude_db, atol=1.0)
        assert exact.peak()[0] == pytest.approx(ideal.peak()[0], rel=0.15)

    def test_second_order_parameters(self, model):
        p = model.second_order()
        assert p.fn_hz == pytest.approx(8.74, abs=0.05)
        assert p.zeta == pytest.approx(0.426, abs=0.005)

    def test_exact_damping_option(self, model):
        assert model.second_order(exact_damping=True).zeta > model.second_order().zeta


class TestFaultVisibilityInTheory:
    """Injected faults shift the *component-exact* theory response, which
    is how limits get their sensitivity."""

    def test_leak_flattens_low_end(self):
        healthy = PLLLinearModel(paper_pll())
        leaky = PLLLinearModel(
            apply_fault(paper_pll(), Fault(FaultKind.LEAKY_CAPACITOR, 20e3))
        )
        f = log_frequency_grid(1.0, 60.0, 30)
        h_mag = healthy.bode(f).magnitude_db
        l_mag = leaky.bode(f).magnitude_db
        assert not np.allclose(h_mag, l_mag, atol=0.3)

    def test_vco_gain_shift_moves_peak(self):
        healthy = PLLLinearModel(paper_pll())
        shifted = PLLLinearModel(
            apply_fault(paper_pll(), Fault(FaultKind.VCO_GAIN_SHIFT, 0.5))
        )
        f = log_frequency_grid(1.0, 60.0, 200)
        f_h = healthy.bode(f).peak()[0]
        f_s = shifted.bode(f).peak()[0]
        assert f_s < f_h
        assert f_s == pytest.approx(f_h / math.sqrt(2.0), rel=0.05)

    def test_r2_collapse_raises_peak(self):
        healthy = PLLLinearModel(paper_pll())
        weak = PLLLinearModel(
            apply_fault(paper_pll(), Fault(FaultKind.R2_SHIFT, 0.1))
        )
        f = log_frequency_grid(1.0, 60.0, 200)
        assert weak.bode(f).peak()[1] > healthy.bode(f).peak()[1] + 3.0
