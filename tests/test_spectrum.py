"""Harmonic analysis of stepped FM stimuli."""

import math

import pytest

from repro.errors import StimulusError
from repro.stimulus.modulation import MultiToneFSKStimulus
from repro.stimulus.spectrum import (
    HarmonicContent,
    staircase_harmonics,
    worst_even_harmonic,
)


def content_for_steps(steps, f_mod=8.0):
    stim = MultiToneFSKStimulus(1000.0, 1.0, steps=steps)
    return staircase_harmonics(stim.schedule(f_mod), 1000.0)


class TestStaircaseHarmonics:
    def test_two_tone_is_square_wave(self):
        """Square FM: only odd harmonics, 3rd at 1/3."""
        c = content_for_steps(2)
        assert c.harmonic(2) == pytest.approx(0.0, abs=1e-3)
        assert c.harmonic(3) == pytest.approx(1.0 / 3.0, rel=0.02)
        assert c.harmonic(4) == pytest.approx(0.0, abs=1e-3)
        assert c.harmonic(5) == pytest.approx(1.0 / 5.0, rel=0.02)
        # Square-wave fundamental = 4/pi x the step amplitude.
        assert c.fundamental_amplitude == pytest.approx(
            4.0 / math.pi, rel=0.01
        )

    def test_even_steps_have_no_even_harmonics(self):
        for steps in (2, 4, 6, 10, 16):
            c = content_for_steps(steps)
            __, worst = worst_even_harmonic(c)
            assert worst < 5e-3, f"steps={steps}"

    def test_odd_steps_leak_even_harmonics(self):
        """The FSK-step ablation's pathology, quantified: odd step
        counts break half-wave symmetry and put real power in even
        harmonics (the 3-step case leaks strongly into the 2nd)."""
        c3 = content_for_steps(3)
        k, a = worst_even_harmonic(c3)
        assert k == 2
        assert a > 0.2
        c5 = content_for_steps(5)
        assert worst_even_harmonic(c5)[1] > 0.05

    def test_distortion_falls_with_step_count(self):
        thd = {s: content_for_steps(s).total_harmonic_distortion
               for s in (2, 4, 6, 10, 16)}
        assert thd[4] > thd[6] > thd[10] > thd[16]

    def test_four_steps_degenerate_to_two(self):
        """Midpoint sampling at 4 steps hits ±sin(45°) twice each — a
        two-level waveform again, with *identical relative* harmonic
        structure to the two-tone case (only the amplitude differs)."""
        c2 = content_for_steps(2)
        c4 = content_for_steps(4)
        assert c4.total_harmonic_distortion == pytest.approx(
            c2.total_harmonic_distortion, rel=1e-6
        )
        assert c4.fundamental_amplitude == pytest.approx(
            c2.fundamental_amplitude * math.sin(math.pi / 4.0), rel=1e-6
        )

    def test_ten_steps_approximates_sine_well(self):
        c = content_for_steps(10)
        # Fundamental within a few percent of the ideal sine amplitude.
        assert c.fundamental_amplitude == pytest.approx(1.0, rel=0.05)
        assert c.total_harmonic_distortion < 0.25

    def test_validation(self):
        with pytest.raises(StimulusError):
            staircase_harmonics([], 1000.0)
        with pytest.raises(StimulusError):
            staircase_harmonics([(1000.0, 0.1)], 1000.0, n_harmonics=0)
        with pytest.raises(StimulusError):
            # Constant schedule: no fundamental.
            staircase_harmonics([(1000.0, 0.1)], 1000.0)

    def test_harmonic_index_bounds(self):
        c = content_for_steps(4)
        with pytest.raises(StimulusError):
            c.harmonic(1)
        with pytest.raises(StimulusError):
            c.harmonic(99)
