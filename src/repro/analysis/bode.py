"""Bode-response containers and evaluation.

:class:`BodeResponse` is the common currency between the linear theory
(Figure 10), the BIST measurement (Figures 11–12) and the parameter
extraction: frequencies in Hz, magnitude in dB and phase in degrees,
with the query helpers (peak, 3 dB corner, interpolation) the paper's
post-processing needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.units import TWO_PI

__all__ = ["BodeResponse", "compute_bode", "log_frequency_grid"]


def log_frequency_grid(f_start: float, f_stop: float, points: int) -> np.ndarray:
    """Logarithmically spaced frequency grid in Hz."""
    if f_start <= 0.0 or f_stop <= f_start:
        raise ValueError(
            f"need 0 < f_start < f_stop, got {f_start!r}, {f_stop!r}"
        )
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points!r}")
    return np.logspace(np.log10(f_start), np.log10(f_stop), points)


@dataclass(frozen=True)
class BodeResponse:
    """Sampled magnitude/phase response over frequency.

    Attributes
    ----------
    frequencies_hz:
        Modulation frequencies, ascending, in Hz.
    magnitude_db:
        Gain relative to the in-band (0 dB) reference — eq. (7)'s
        convention.
    phase_deg:
        Phase lag of the output relative to the input, in degrees
        (negative below resonance trending to -180°, as Figure 1).
    label:
        Series name for reports ("Pure Sine FM", "Multi Tone FSK", …).
    """

    frequencies_hz: np.ndarray
    magnitude_db: np.ndarray
    phase_deg: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        f = np.asarray(self.frequencies_hz, dtype=float)
        m = np.asarray(self.magnitude_db, dtype=float)
        p = np.asarray(self.phase_deg, dtype=float)
        if f.ndim != 1 or f.size == 0:
            raise MeasurementError("frequencies must be a non-empty 1-D array")
        if m.shape != f.shape or p.shape != f.shape:
            raise MeasurementError(
                f"shape mismatch: f{f.shape}, mag{m.shape}, phase{p.shape}"
            )
        if np.any(np.diff(f) <= 0.0):
            raise MeasurementError("frequencies must be strictly increasing")
        object.__setattr__(self, "frequencies_hz", f)
        object.__setattr__(self, "magnitude_db", m)
        object.__setattr__(self, "phase_deg", p)

    def __len__(self) -> int:
        return int(self.frequencies_hz.size)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def magnitude_at(self, f_hz: float) -> float:
        """Log-frequency-interpolated magnitude in dB."""
        return float(
            np.interp(np.log10(f_hz), np.log10(self.frequencies_hz),
                      self.magnitude_db)
        )

    def phase_at(self, f_hz: float) -> float:
        """Log-frequency-interpolated phase in degrees."""
        return float(
            np.interp(np.log10(f_hz), np.log10(self.frequencies_hz),
                      self.phase_deg)
        )

    def peak(self) -> Tuple[float, float]:
        """``(frequency_hz, magnitude_db)`` of the highest sampled point,
        refined by parabolic interpolation in log-frequency when the peak
        is interior."""
        idx = int(np.argmax(self.magnitude_db))
        f = self.frequencies_hz
        m = self.magnitude_db
        if 0 < idx < len(self) - 1:
            x = np.log10(f[idx - 1: idx + 2])
            y = m[idx - 1: idx + 2]
            denom = (x[0] - x[1]) * (x[0] - x[2]) * (x[1] - x[2])
            if denom != 0.0:
                a = (
                    x[2] * (y[1] - y[0]) + x[1] * (y[0] - y[2])
                    + x[0] * (y[2] - y[1])
                ) / denom
                b = (
                    x[2] ** 2 * (y[0] - y[1]) + x[1] ** 2 * (y[2] - y[0])
                    + x[0] ** 2 * (y[1] - y[2])
                ) / denom
                if a < 0.0:
                    x_star = -b / (2.0 * a)
                    if x[0] <= x_star <= x[2]:
                        c = y[1] - a * x[1] ** 2 - b * x[1]
                        y_star = a * x_star ** 2 + b * x_star + c
                        return 10.0 ** x_star, float(y_star)
        return float(f[idx]), float(m[idx])

    def f_3db(self, reference_db: float = 0.0) -> float:
        """First frequency past the peak where the magnitude crosses
        ``reference_db - 3`` dB (the one-sided loop bandwidth of
        Section 2)."""
        target = reference_db - 3.0
        f = self.frequencies_hz
        m = self.magnitude_db
        start = int(np.argmax(m))
        for i in range(start, len(self) - 1):
            if m[i] >= target >= m[i + 1]:
                # Linear interpolation in log-f.
                x0, x1 = np.log10(f[i]), np.log10(f[i + 1])
                frac = (m[i] - target) / (m[i] - m[i + 1])
                return float(10.0 ** (x0 + frac * (x1 - x0)))
        raise MeasurementError(
            f"response never crosses {target:.2f} dB within the sweep "
            f"(max f = {f[-1]:.4g} Hz)"
        )

    def relabel(self, label: str) -> "BodeResponse":
        """Copy with a new series label."""
        return BodeResponse(
            self.frequencies_hz, self.magnitude_db, self.phase_deg, label
        )

    def normalised(self, reference_db: Optional[float] = None) -> "BodeResponse":
        """Shift magnitudes so the in-band reference sits at 0 dB.

        ``reference_db`` defaults to the first (lowest-frequency) sample
        — the paper's convention of referencing everything to a
        measurement taken well inside the loop bandwidth.
        """
        ref = self.magnitude_db[0] if reference_db is None else reference_db
        return BodeResponse(
            self.frequencies_hz, self.magnitude_db - ref, self.phase_deg,
            self.label,
        )


def compute_bode(
    transfer: Callable[[np.ndarray], np.ndarray],
    frequencies_hz: Sequence[float],
    label: str = "",
    normalise_dc: bool = False,
) -> BodeResponse:
    """Evaluate a complex transfer function on a frequency grid.

    ``transfer`` maps an array of complex ``s = jω`` to complex gain.
    With ``normalise_dc`` the magnitude is referenced to the response at
    a frequency three decades below the grid start (approximating the
    0 dB asymptote of Figure 1).
    """
    f = np.asarray(frequencies_hz, dtype=float)
    s = 1j * TWO_PI * f
    h = np.asarray(transfer(s), dtype=complex)
    mag_db = 20.0 * np.log10(np.abs(h))
    phase = np.degrees(np.unwrap(np.angle(h)))
    if normalise_dc:
        s_dc = np.array([1j * TWO_PI * f[0] * 1e-3])
        h_dc = np.asarray(transfer(s_dc), dtype=complex)
        mag_db = mag_db - 20.0 * np.log10(abs(h_dc[0]))
        phase = phase - float(np.degrees(np.angle(h_dc[0])))
    return BodeResponse(f, mag_db, phase, label)
