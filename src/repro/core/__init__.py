"""The paper's contribution: on-chip closed-loop transfer-function BIST.

* :mod:`repro.core.peak_detector` — the novel modified-PFD peak
  frequency detector (Figure 7/8).
* :mod:`repro.core.counters` — gated frequency counter and phase
  counter (Figure 6, eq. 8).
* :mod:`repro.core.hold` — the loop-hold (break-and-freeze) mechanism.
* :mod:`repro.core.sequencer` — the Table 2 five-stage test sequence.
* :mod:`repro.core.executor` — pluggable serial / batched process-pool
  tone execution for sweeps (shared-memory result transport).
* :mod:`repro.core.warm` — the warm-start lock-state cache serving
  settled stage-0 snapshots.
* :mod:`repro.core.monitor` — the sweep orchestrator producing the
  Figures 11–12 responses.
* :mod:`repro.core.evaluation` — eqs. (7) and (8): magnitude and phase
  from counted quantities.
* :mod:`repro.core.limits` — on-chip limit comparison (go/no-go).
* :mod:`repro.core.architecture` — the Figure 6 configuration container
  (mux states, test clock, gate sizing).
* :mod:`repro.core.selftest` — the four-step production self-test
  (lock / nominal frequency / hold droop / transfer function).
"""

from repro.core.peak_detector import PeakFrequencyDetector, PeakEvent
from repro.core.counters import (
    FrequencyCounter,
    FrequencyMeasurement,
    PhaseCounter,
    PhaseCount,
)
from repro.core.hold import LoopHoldControl
from repro.core.architecture import BISTConfig, MuxState, TEST_SEQUENCE_TABLE
from repro.core.executor import (
    ToneOutcome,
    SweepAborted,
    SweepExecutor,
    SerialSweepExecutor,
    ProcessPoolSweepExecutor,
    ParallelFallbackWarning,
    executor_for,
)
from repro.core.sequencer import (
    TestStage,
    ToneMeasurement,
    ToneTestSequencer,
    ToneTiming,
)
from repro.core.warm import LockStateCache
from repro.core.evaluation import evaluate_sweep, magnitude_db_eq7, phase_deg_eq8
from repro.core.monitor import SweepPlan, SweepResult, TransferFunctionMonitor
from repro.core.limits import LimitCheck, LimitReport, TestLimits
from repro.core.selftest import PLLSelfTest, SelfTestReport, SelfTestStep

__all__ = [
    "PeakFrequencyDetector",
    "PeakEvent",
    "FrequencyCounter",
    "FrequencyMeasurement",
    "PhaseCounter",
    "PhaseCount",
    "LoopHoldControl",
    "BISTConfig",
    "MuxState",
    "TEST_SEQUENCE_TABLE",
    "ToneOutcome",
    "SweepAborted",
    "SweepExecutor",
    "SerialSweepExecutor",
    "ProcessPoolSweepExecutor",
    "ParallelFallbackWarning",
    "executor_for",
    "LockStateCache",
    "TestStage",
    "ToneMeasurement",
    "ToneTestSequencer",
    "ToneTiming",
    "evaluate_sweep",
    "magnitude_db_eq7",
    "phase_deg_eq8",
    "SweepPlan",
    "SweepResult",
    "TransferFunctionMonitor",
    "LimitCheck",
    "LimitReport",
    "TestLimits",
    "PLLSelfTest",
    "SelfTestReport",
    "SelfTestStep",
]
