"""Serial-vs-parallel sweep equivalence and executor plumbing.

The tentpole guarantee of the executor layer is *bit-identical* results:
a sweep fanned over a process pool must reproduce the serial sweep
field-for-field — measurements, failure reasons and ordering — because
every tone builds its own simulator from the same immutable inputs.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    ParallelFallbackWarning,
    ProcessPoolSweepExecutor,
    SerialSweepExecutor,
    SweepAborted,
    SweepPlan,
    ToneOutcome,
    TransferFunctionMonitor,
    executor_for,
)
from repro.core.executor import REPRO_NUM_WORKERS_ENV
import repro.core.executor as executor_module
from repro.errors import ConfigurationError, MeasurementError
from repro.presets import paper_pll, paper_stimulus
from repro.reporting import DeviceReportRequest, batch_device_reports

# fn is ~55 Hz: the low tones measure cleanly, while at 2 kHz the loop
# attenuates the modulation so hard the peak detector starves — a
# genuine in-worker MeasurementError, not a monkeypatched one (pool
# workers run in separate processes where monkeypatching can't reach).
PASSING_TONES = (10.0, 55.0)
STARVING_TONE = 2000.0


@pytest.fixture(scope="module")
def monitor(fast_bist_config):
    return TransferFunctionMonitor(
        paper_pll(), paper_stimulus("multitone"), fast_bist_config
    )


@pytest.fixture(scope="module")
def mixed_plan():
    return SweepPlan(PASSING_TONES + (STARVING_TONE,))


@pytest.fixture(scope="module")
def serial_result(monitor, mixed_plan):
    return monitor.run(mixed_plan)


@pytest.fixture(scope="module")
def parallel_result(monitor, mixed_plan):
    # An explicit executor bypasses the visible-CPU fallback, so the
    # process boundary is genuinely crossed even on a 1-core runner.
    return monitor.run(mixed_plan, executor=ProcessPoolSweepExecutor(4))


def _assert_measurements_identical(a, b):
    assert a.f_mod == b.f_mod
    assert a.held.vco_frequency_hz == b.held.vco_frequency_hz
    assert a.phase_count.pulses == b.phase_count.pulses
    assert a.phase_count.t_start == b.phase_count.t_start
    assert a.phase_count.t_stop == b.phase_count.t_stop
    assert a.f_out_nominal == b.f_out_nominal
    assert a.arm_time == b.arm_time
    assert a.peak_event.time == b.peak_event.time
    assert a.delta_f_hz == b.delta_f_hz
    assert a.phase_delay_deg == b.phase_delay_deg


class TestSerialParallelEquivalence:
    def test_same_tone_count_and_order(self, serial_result, parallel_result):
        assert [m.f_mod for m in serial_result.measurements] == \
            [m.f_mod for m in parallel_result.measurements]

    def test_measurements_bit_identical(self, serial_result, parallel_result):
        for a, b in zip(serial_result.measurements,
                        parallel_result.measurements):
            _assert_measurements_identical(a, b)

    def test_response_bit_identical(self, serial_result, parallel_result):
        assert list(serial_result.response.magnitude_db) == \
            list(parallel_result.response.magnitude_db)
        assert list(serial_result.response.phase_deg) == \
            list(parallel_result.response.phase_deg)

    def test_failed_tones_identical(self, serial_result, parallel_result):
        assert serial_result.failed_tones == parallel_result.failed_tones

    def test_failure_captured_across_process_boundary(self, parallel_result):
        assert STARVING_TONE in parallel_result.failed_tones
        assert "peak detector" in parallel_result.failed_tones[STARVING_TONE]
        assert not parallel_result.complete


class TestReferenceToneFailure:
    def test_same_exception_both_ways(self, monitor):
        # Both tones starve, so the *reference* tone fails — which must
        # raise, with the same message, whichever executor ran it.
        plan = SweepPlan((STARVING_TONE, 2.0 * STARVING_TONE))
        with pytest.raises(MeasurementError) as serial_exc:
            monitor.run(plan)
        with pytest.raises(MeasurementError) as parallel_exc:
            monitor.run(plan, executor=ProcessPoolSweepExecutor(2))
        assert str(serial_exc.value) == str(parallel_exc.value)
        assert "in-band reference tone" in str(serial_exc.value)


class TestExecutorPlumbing:
    def test_factory_serial(self):
        assert isinstance(executor_for(1), SerialSweepExecutor)

    def test_factory_pool(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 8)
        ex = executor_for(4)
        assert isinstance(ex, ProcessPoolSweepExecutor)
        assert ex.n_workers == 4

    def test_factory_caps_at_visible_cores(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 3)
        ex = executor_for(16)
        assert isinstance(ex, ProcessPoolSweepExecutor)
        assert ex.n_workers == 3

    def test_factory_single_core_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 1)
        with pytest.warns(ParallelFallbackWarning, match="1 CPU"):
            ex = executor_for(8)
        assert isinstance(ex, SerialSweepExecutor)

    def test_factory_too_few_tones_falls_back(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 8)
        with pytest.warns(ParallelFallbackWarning, match="tone"):
            ex = executor_for(8, n_tones=1)
        assert isinstance(ex, SerialSweepExecutor)

    def test_factory_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            executor_for(0)
        with pytest.raises(ConfigurationError):
            ProcessPoolSweepExecutor(-1)

    def test_explicit_executor_overrides_n_workers(
        self, monitor, mixed_plan, serial_result
    ):
        result = monitor.run(
            mixed_plan, n_workers=4, executor=SerialSweepExecutor()
        )
        for a, b in zip(serial_result.measurements, result.measurements):
            _assert_measurements_identical(a, b)

    def test_pool_wider_than_plan(self, monitor, fast_bist_config):
        # min(n_workers, tones) keeps the pool from spawning idle workers.
        plan = SweepPlan(PASSING_TONES)
        result = monitor.run(plan, executor=ProcessPoolSweepExecutor(16))
        assert len(result.measurements) == len(PASSING_TONES)

    def test_outcome_failed_property(self):
        assert ToneOutcome(f_mod=1.0, error="boom").failed
        assert not ToneOutcome(f_mod=1.0).failed


class TestEnvWorkerOverride:
    def test_override_wins_over_argument(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 8)
        monkeypatch.setenv(REPRO_NUM_WORKERS_ENV, "2")
        ex = executor_for(6)
        assert isinstance(ex, ProcessPoolSweepExecutor)
        assert ex.n_workers == 2

    def test_override_to_one_selects_serial(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 8)
        monkeypatch.setenv(REPRO_NUM_WORKERS_ENV, "1")
        assert isinstance(executor_for(6), SerialSweepExecutor)

    def test_blank_override_is_ignored(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 8)
        monkeypatch.setenv(REPRO_NUM_WORKERS_ENV, "  ")
        ex = executor_for(4)
        assert isinstance(ex, ProcessPoolSweepExecutor)
        assert ex.n_workers == 4

    @pytest.mark.parametrize("value", ["0", "-3", "two", "1.5"])
    def test_unusable_override_raises(self, monkeypatch, value):
        monkeypatch.setenv(REPRO_NUM_WORKERS_ENV, value)
        with pytest.raises(ConfigurationError, match=REPRO_NUM_WORKERS_ENV):
            executor_for(4)


class TestFallbackWarnsOnce:
    def test_second_fallback_is_silent(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 1)
        with pytest.warns(ParallelFallbackWarning):
            executor_for(8)
        # Production emits the diagnostic once per process; a sweep over
        # a 200-die lot must not print 200 copies.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert isinstance(executor_for(8), SerialSweepExecutor)

    def test_reset_hook_rearms(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_visible_cpu_count", lambda: 1)
        with pytest.warns(ParallelFallbackWarning):
            executor_for(8)
        executor_module._reset_fallback_warning()
        with pytest.warns(ParallelFallbackWarning):
            executor_for(8)


class TestStreamingCallbacks:
    def test_serial_streams_every_tone_in_plan_order(
        self, monitor, mixed_plan, serial_result
    ):
        seen = []
        result = monitor.run(
            mixed_plan,
            on_outcome=lambda i, out: seen.append((i, out.f_mod, out.failed)),
        )
        assert [i for i, _, _ in seen] == list(range(len(seen)))
        assert [f for _, f, _ in seen] == list(mixed_plan.frequencies_hz)
        # The starving tone streams as a failed outcome, not an exception.
        assert (2, STARVING_TONE, True) in seen
        for a, b in zip(serial_result.measurements, result.measurements):
            _assert_measurements_identical(a, b)

    def test_pool_streams_every_tone(self, monitor, mixed_plan):
        seen = {}
        monitor.run(
            mixed_plan,
            executor=ProcessPoolSweepExecutor(4),
            on_outcome=lambda i, out: seen.setdefault(i, out.f_mod),
        )
        # Chunks complete in any order, but every tone must stream
        # exactly once with its own plan index.
        assert seen == {
            i: f for i, f in enumerate(mixed_plan.frequencies_hz)
        }

    def test_callback_abort_propagates_serial(self, monitor, mixed_plan):
        def bail(index, outcome):
            raise SweepAborted("stop right there")

        with pytest.raises(SweepAborted, match="stop right there"):
            monitor.run(mixed_plan, on_outcome=bail)

    def test_callback_abort_propagates_pool(self, monitor, mixed_plan):
        # The pool path must also tear down its shared-memory segment —
        # the session-scoped /dev/shm leak guard enforces that part.
        def bail(index, outcome):
            raise SweepAborted("stop right there")

        with pytest.raises(SweepAborted, match="stop right there"):
            monitor.run(
                mixed_plan,
                executor=ProcessPoolSweepExecutor(4),
                on_outcome=bail,
            )


class TestBatchDeviceReports:
    def test_serial_parallel_byte_identical(self, fast_bist_config):
        plan = SweepPlan(PASSING_TONES)
        requests = [
            DeviceReportRequest(
                pll=paper_pll(),
                stimulus=paper_stimulus("multitone"),
                plan=plan,
                config=fast_bist_config,
            )
            for _ in range(2)
        ]
        serial = batch_device_reports(requests, n_workers=1)
        parallel = batch_device_reports(requests, n_workers=2)
        assert serial == parallel
        assert all(r.startswith("# BIST report") for r in serial)

    def test_dead_reference_yields_failure_stub(self, fast_bist_config):
        plan = SweepPlan((STARVING_TONE, 2.0 * STARVING_TONE))
        request = DeviceReportRequest(
            pll=paper_pll(),
            stimulus=paper_stimulus("multitone"),
            plan=plan,
            config=fast_bist_config,
        )
        (report,) = batch_device_reports([request])
        assert "FAIL (sweep aborted)" in report
        assert "in-band reference tone" in report

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            batch_device_reports([], n_workers=0)
