"""Root finding for edge-crossing times.

The behavioral PLL simulator must answer questions of the form "at what
time does the VCO's accumulated phase reach the next divider edge?".
The phase-advance function over a segment is analytic, strictly
increasing (the VCO frequency is clamped positive) and has an analytic
derivative, so a safeguarded Newton iteration with a bisection fallback
converges in a handful of steps to near machine precision.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConvergenceError

__all__ = ["solve_increasing", "bisect_increasing"]

_DEFAULT_TOL = 1e-13
_MAX_ITER = 200


def bisect_increasing(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    target: float,
    tol: float = _DEFAULT_TOL,
    max_iter: int = _MAX_ITER,
) -> float:
    """Find ``x`` in ``[lo, hi]`` with ``fn(x) == target`` for increasing ``fn``.

    Pure bisection; used directly for functions whose derivative is
    awkward, and as the safeguard inside :func:`solve_increasing`.

    Raises
    ------
    ConvergenceError
        If the target is not bracketed by ``[fn(lo), fn(hi)]``.
    """
    f_lo = fn(lo) - target
    f_hi = fn(hi) - target
    if f_lo > 0.0 or f_hi < 0.0:
        raise ConvergenceError(
            f"target {target!r} not bracketed: fn({lo!r})={f_lo + target!r}, "
            f"fn({hi!r})={f_hi + target!r}"
        )
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if hi - lo <= tol:
            return mid
        f_mid = fn(mid) - target
        if f_mid == 0.0:
            return mid
        if f_mid < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def solve_increasing(
    fn: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    derivative: Optional[Callable[[float], float]] = None,
    tol: float = _DEFAULT_TOL,
    max_iter: int = _MAX_ITER,
) -> float:
    """Safeguarded Newton solve of ``fn(x) == target`` on ``[lo, hi]``.

    ``fn`` must be continuous and non-decreasing on the bracket.  When
    ``derivative`` is supplied, Newton steps are attempted and accepted
    only while they stay inside the shrinking bracket; otherwise each
    iteration falls back to bisection.  Convergence is declared when the
    bracket width falls below ``tol`` (an *absolute* tolerance on ``x``,
    appropriate because callers solve for times measured in seconds).

    Raises
    ------
    ConvergenceError
        If the target is not bracketed, or the iteration budget is
        exhausted before the bracket shrinks below ``tol``.
    """
    f_lo = fn(lo) - target
    f_hi = fn(hi) - target
    if f_lo > 0.0 or f_hi < 0.0:
        raise ConvergenceError(
            f"target {target!r} not bracketed on [{lo!r}, {hi!r}]: "
            f"fn(lo)-target={f_lo!r}, fn(hi)-target={f_hi!r}"
        )
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi

    x = 0.5 * (lo + hi)
    for _ in range(max_iter):
        if hi - lo <= tol:
            return 0.5 * (lo + hi)
        f_x = fn(x) - target
        if f_x == 0.0:
            return x
        if f_x < 0.0:
            lo = x
        else:
            hi = x

        x_next = None
        if derivative is not None:
            d = derivative(x)
            if d > 0.0:
                candidate = x - f_x / d
                if lo < candidate < hi:
                    x_next = candidate
        if x_next is None:
            x_next = 0.5 * (lo + hi)
        x = x_next
    raise ConvergenceError(
        f"solve_increasing did not converge within {max_iter} iterations "
        f"(bracket [{lo!r}, {hi!r}], tol={tol!r})"
    )
