"""Disk persistence of the warm lock-state cache.

The contract under test: ``save → load`` reproduces the cache exactly
(entries, recency order, capacity), ``save → load → save`` is
byte-identical (pinned pickle protocol), and a loaded cache serves warm
restores bit-identical to the cache that was saved.  Unreadable files
raise :class:`~repro.errors.CachePersistenceError`; stale *entries*
inside a readable file are skipped, never fatal.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import LockStateCache, SweepPlan, TransferFunctionMonitor
from repro.core.warm import CACHE_FORMAT_MAGIC, CACHE_FORMAT_VERSION
from repro.errors import CachePersistenceError
from repro.presets import paper_pll, paper_stimulus

PLAN = SweepPlan((10.0, 55.0))


@pytest.fixture(scope="module")
def populated(fast_bist_config):
    """A cache filled by a real two-tone sweep, plus that sweep's result."""
    cache = LockStateCache(max_entries=64)
    monitor = TransferFunctionMonitor(
        paper_pll(), paper_stimulus("multitone"), fast_bist_config,
        cache=cache,
    )
    result = monitor.run(PLAN)
    return cache, result


class TestRoundTrip:
    def test_entries_order_and_capacity_survive(self, populated, tmp_path):
        cache, _ = populated
        path = tmp_path / "warm.cache"
        saved = cache.save(path)
        assert saved == len(cache) == len(PLAN.frequencies_hz)
        loaded = LockStateCache.load(path)
        assert loaded.max_entries == cache.max_entries
        assert loaded.export() == cache.export()
        assert loaded.stale_entries_skipped == 0

    def test_save_load_save_byte_identical(self, populated, tmp_path):
        cache, _ = populated
        first = tmp_path / "first.cache"
        second = tmp_path / "second.cache"
        cache.save(first)
        LockStateCache.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_no_temporary_file_litter(self, populated, tmp_path):
        cache, _ = populated
        cache.save(tmp_path / "warm.cache")
        assert [p.name for p in tmp_path.iterdir()] == ["warm.cache"]

    def test_counters_not_persisted(self, populated, tmp_path):
        cache, _ = populated
        path = tmp_path / "warm.cache"
        cache.save(path)
        loaded = LockStateCache.load(path)
        assert loaded.stats == (0, 0)

    def test_capacity_override(self, populated, tmp_path):
        cache, _ = populated
        path = tmp_path / "warm.cache"
        cache.save(path)
        loaded = LockStateCache.load(path, max_entries=512)
        assert loaded.max_entries == 512
        assert len(loaded) == len(cache)


class TestLoadGuards:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CachePersistenceError, match="no persisted"):
            LockStateCache.load(tmp_path / "absent.cache")

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.cache"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CachePersistenceError, match="cannot read"):
            LockStateCache.load(path)

    def test_foreign_pickle_raises(self, tmp_path):
        path = tmp_path / "foreign.cache"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(CachePersistenceError, match="not a persisted"):
            LockStateCache.load(path)

    def test_newer_version_raises(self, populated, tmp_path):
        cache, _ = populated
        path = tmp_path / "future.cache"
        cache.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CachePersistenceError, match="newer|reads up to"):
            LockStateCache.load(path)

    def test_unreadable_version_raises(self, tmp_path):
        path = tmp_path / "vbad.cache"
        path.write_bytes(pickle.dumps({
            "format": CACHE_FORMAT_MAGIC, "version": "one", "entries": (),
        }))
        with pytest.raises(CachePersistenceError, match="version"):
            LockStateCache.load(path)

    def test_stale_entries_skipped_not_fatal(self, populated, tmp_path):
        cache, _ = populated
        healthy = cache.export()
        (sig, *rest), snap = healthy[0]
        tampered = LockStateCache(max_entries=64)
        tampered.merge(healthy)
        # A key whose physics signature disagrees with its snapshot
        # would restore the wrong device's state — must be dropped.
        tampered.put(("some-other-signature", *rest), snap)
        # A non-snapshot value smuggled into the store.
        tampered.put((sig, "junk-entry"), "not a snapshot")
        path = tmp_path / "tampered.cache"
        tampered.save(path)
        loaded = LockStateCache.load(path)
        assert loaded.stale_entries_skipped == 2
        assert loaded.export() == healthy


class TestWarmEquivalence:
    def test_loaded_cache_serves_warm_identical_sweep(
        self, populated, tmp_path, fast_bist_config
    ):
        cache, cold_result = populated
        path = tmp_path / "warm.cache"
        cache.save(path)
        loaded = LockStateCache.load(path)
        monitor = TransferFunctionMonitor(
            paper_pll(), paper_stimulus("multitone"), fast_bist_config,
            cache=loaded,
        )
        warm_result = monitor.run(PLAN)
        hits, misses = loaded.stats
        assert hits == len(PLAN.frequencies_hz)
        assert misses == 0
        assert all(
            m.timing is not None and m.timing.warm
            for m in warm_result.measurements
        )
        for a, b in zip(cold_result.measurements, warm_result.measurements):
            assert a.delta_f_hz == b.delta_f_hz
            assert a.phase_delay_deg == b.phase_delay_deg
            assert a.phase_count.pulses == b.phase_count.pulses
