"""Event stream of the sweep-job service.

Every observable job transition — admission, start, each finished tone,
the terminal verdict — is one :class:`JobEvent`.  Events are the
service's *only* output channel to watchers: a subscriber that attaches
late replays the job's full history first, then rides the live stream,
so the sequence a watcher sees is identical whenever it tunes in.

Tone events are emitted **in plan order** regardless of which executor
ran the tones (the service reorders pool completions), so a watcher can
fold the stream incrementally — the in-band reference tone is always
the first tone event, exactly as eq. (7) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.executor import ToneOutcome

__all__ = [
    "JobEvent",
    "EVENT_ACCEPTED",
    "EVENT_STARTED",
    "EVENT_TONE",
    "EVENT_DONE",
    "EVENT_FAILED",
    "EVENT_CANCELLED",
    "TERMINAL_EVENTS",
    "tone_event_payload",
]

EVENT_ACCEPTED = "accepted"
EVENT_STARTED = "started"
EVENT_TONE = "tone"
EVENT_DONE = "done"
EVENT_FAILED = "failed"
EVENT_CANCELLED = "cancelled"

#: Event kinds that end a job's stream.
TERMINAL_EVENTS = frozenset({EVENT_DONE, EVENT_FAILED, EVENT_CANCELLED})


@dataclass(frozen=True)
class JobEvent:
    """One observable step of a job's life.

    ``seq`` increases by one per event within a job (starting at 0 with
    the admission event), so watchers can replay history and splice the
    live stream without duplicates.  ``payload`` is JSON-able by
    construction — it crosses the wire protocol verbatim.
    """

    job_id: str
    seq: int
    kind: str
    payload: dict

    @property
    def terminal(self) -> bool:
        """Whether this event ends the job's stream."""
        return self.kind in TERMINAL_EVENTS

    def to_wire(self) -> dict:
        """Flat JSON-able form for the line protocol."""
        return {
            "event": self.kind,
            "job_id": self.job_id,
            "seq": self.seq,
            **self.payload,
        }


def tone_event_payload(
    index: int,
    outcome: ToneOutcome,
    magnitude_db: Optional[float] = None,
) -> dict:
    """Flatten one tone outcome into a JSON-able event payload.

    Carries the measured quantities a streaming consumer can act on
    mid-sweep — the peak deviation and eq. (8) phase, the warm/cold
    provenance, and (once the reference tone is known) the eq. (7)
    magnitude — or the captured failure text for a dead tone.
    """
    payload: dict = {"index": index, "f_mod_hz": outcome.f_mod}
    if outcome.failed:
        payload["ok"] = False
        payload["error"] = outcome.error
        return payload
    m = outcome.measurement
    payload["ok"] = True
    payload["delta_f_hz"] = m.delta_f_hz
    payload["phase_deg"] = -m.phase_delay_deg
    payload["warm"] = bool(m.timing is not None and m.timing.warm)
    if magnitude_db is not None:
        payload["magnitude_db"] = magnitude_db
    return payload
