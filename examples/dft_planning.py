"""DfT planning: sizing the on-chip test hardware for a given PLL.

Before committing the BIST to silicon, a DfT engineer must answer three
questions the paper raises:

1. Is the DCO master clock fast enough? (eq. 2 / Table 1 feasibility)
2. Do the peak-detector gate delays satisfy the Figure 7 sampling
   constraint against the PFD's dead-zone glitch width?
3. How long a frequency count does the hold sustain, i.e. what
   measurement resolution is achievable?

This example runs those checks for the paper's loop and for a deliberately
bad plan, showing how the library surfaces each problem.

Run:  python examples/dft_planning.py
"""

from repro import ConfigurationError, StimulusError, paper_pll
from repro.core.architecture import BISTConfig
from repro.reporting import format_table
from repro.stimulus import DCO


def check_dco(f_master, f_in, deviation, wanted_steps):
    """Question 1: stimulus feasibility per eq. (2)."""
    dco = DCO(f_master)
    res = dco.resolution(f_in)
    usable = int(deviation / res)
    try:
        dco.tone_set(f_in, deviation, wanted_steps)
        verdict = "OK"
    except StimulusError as exc:
        verdict = f"INFEASIBLE — {exc}"
    return res, usable, verdict


def check_detector(config, pll):
    """Question 2: Figure 7 sampling constraint."""
    try:
        config.validate_against_pfd(pll.pfd_reset_delay)
        return "OK"
    except ConfigurationError as exc:
        return f"VIOLATED — {exc}"


def main() -> None:
    pll = paper_pll()
    fn = pll.natural_frequency_hz()
    print(f"target loop: fn = {fn:.2f} Hz, N = {pll.n}, "
          f"PFD glitch = {pll.pfd_reset_delay * 1e9:.0f} ns\n")

    # --- Question 1: DCO master clock --------------------------------
    rows = []
    for f_master in (1e6, 10e6, 100e6):
        res, usable, verdict = check_dco(f_master, 1000.0, 1.0, 10)
        rows.append([f"{f_master/1e6:g} MHz", f"{res:.4f} Hz", usable,
                     verdict])
    print(format_table(
        ["DCO master", "eq.(2) resolution @1 kHz", "steps in ±1 Hz",
         "10-step FSK"],
        rows,
        title="1. Stimulus feasibility (eq. 2 / Table 1)",
    ))

    # --- Question 2: detector gate delays -----------------------------
    plans = [
        ("sound (60 ns inverter)", BISTConfig(detector_inverter_delay=60e-9)),
        ("marginal (22 ns inverter)",
         BISTConfig(detector_inverter_delay=22e-9)),
    ]
    print()
    print(format_table(
        ["plan", "Figure 7 sampling constraint"],
        [[name, check_detector(cfg, pll)] for name, cfg in plans],
        title="2. Peak-detector timing vs the dead-zone glitch",
    ))

    # --- Question 3: counter sizing -----------------------------------
    rows = []
    f_fb = pll.f_out_nominal / pll.n
    for periods in (16, 64, 256):
        test_time = periods / f_fb
        resolution = (f_fb ** 2) / (periods * 10e6) * pll.n
        rows.append([
            periods, f"{test_time*1e3:.1f} ms", f"{resolution*1e3:.3f} mHz",
        ])
    print()
    print(format_table(
        ["count periods", "hold duration per tone", "VCO-freq resolution"],
        rows,
        title="3. Reciprocal frequency counter sizing "
              "(10 MHz test clock, held loop)",
    ))
    print("\nConclusion: the paper-scale plan (10 MHz DCO/test clock, "
          "60 ns inverter, 64-period counts) measures the loop to "
          "milli-hertz resolution in tens of milliseconds per tone.")


if __name__ == "__main__":
    main()
