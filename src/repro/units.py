"""Unit helpers shared across the library.

The paper mixes Hz, rad/s, dB and degrees freely (its Table 3 quotes the
VCO gain in both Mrad/s/V and Hz/V).  Centralising the conversions keeps
every module honest about which unit it is holding.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "TWO_PI",
    "hz_to_rad",
    "rad_to_hz",
    "db",
    "db_power",
    "undb",
    "deg",
    "rad",
    "wrap_phase_deg",
    "wrap_phase_rad",
    "period",
    "frequency",
]

TWO_PI = 2.0 * math.pi

ArrayLike = Union[float, np.ndarray]


def hz_to_rad(f_hz: ArrayLike) -> ArrayLike:
    """Convert a frequency in hertz to angular frequency in rad/s."""
    return TWO_PI * np.asarray(f_hz) if isinstance(f_hz, np.ndarray) else TWO_PI * f_hz


def rad_to_hz(w_rad: ArrayLike) -> ArrayLike:
    """Convert an angular frequency in rad/s to hertz."""
    if isinstance(w_rad, np.ndarray):
        return np.asarray(w_rad) / TWO_PI
    return w_rad / TWO_PI


def db(ratio: ArrayLike) -> ArrayLike:
    """Amplitude ratio -> decibels (20*log10).

    This is the convention of equation (7) of the paper, where the ratio
    of peak frequency deviations is treated as an amplitude gain.
    """
    return 20.0 * np.log10(ratio)


def db_power(ratio: ArrayLike) -> ArrayLike:
    """Power ratio -> decibels (10*log10)."""
    return 10.0 * np.log10(ratio)


def undb(value_db: ArrayLike) -> ArrayLike:
    """Decibels (amplitude convention) -> linear ratio."""
    return np.power(10.0, np.asarray(value_db) / 20.0) if isinstance(
        value_db, np.ndarray
    ) else 10.0 ** (value_db / 20.0)


def deg(angle_rad: ArrayLike) -> ArrayLike:
    """Radians -> degrees."""
    return np.degrees(angle_rad)


def rad(angle_deg: ArrayLike) -> ArrayLike:
    """Degrees -> radians."""
    return np.radians(angle_deg)


def wrap_phase_deg(angle_deg: ArrayLike) -> ArrayLike:
    """Wrap a phase in degrees into the interval (-180, 180]."""
    wrapped = -(np.mod(-np.asarray(angle_deg, dtype=float) + 180.0, 360.0) - 180.0)
    if np.ndim(angle_deg) == 0:
        return float(wrapped)
    return wrapped


def wrap_phase_rad(angle_rad: ArrayLike) -> ArrayLike:
    """Wrap a phase in radians into the interval (-pi, pi]."""
    wrapped = -(np.mod(-np.asarray(angle_rad, dtype=float) + math.pi, TWO_PI) - math.pi)
    if np.ndim(angle_rad) == 0:
        return float(wrapped)
    return wrapped


def period(f_hz: float) -> float:
    """Period in seconds of a frequency in hertz.

    Raises
    ------
    ValueError
        If the frequency is not strictly positive.
    """
    if f_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {f_hz!r}")
    return 1.0 / f_hz


def frequency(t_s: float) -> float:
    """Frequency in hertz of a period in seconds."""
    if t_s <= 0.0:
        raise ValueError(f"period must be positive, got {t_s!r}")
    return 1.0 / t_s
