"""ASCII tables and terminal Bode plots."""

import numpy as np
import pytest

from repro.analysis.bode import BodeResponse
from repro.reporting import ascii_bode, ascii_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["a", "b"], [[1, 2.5], ["x", 3.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert set(lines[2]) <= {"-", " "}
        assert "2.5" in lines[3]

    def test_column_width_adapts(self):
        text = format_table(["h"], [["longvalue"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("longvalue")

    def test_float_formatting(self):
        text = format_table(["v"], [[1 / 3]])
        assert "0.333333" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert text.splitlines()[0] == "a"


class TestAsciiSeries:
    def test_renders_marks_and_legend(self):
        x = np.array([1.0, 10.0, 100.0])
        y = np.array([0.0, 5.0, -5.0])
        out = ascii_series([("mag", x, y)], width=40, height=8, title="t")
        assert "t" in out
        assert "m = mag" in out
        assert out.count("m") >= 3

    def test_two_series_distinct_marks(self):
        x = np.array([1.0, 10.0])
        out = ascii_series(
            [("aaa", x, np.array([1.0, 2.0])), ("bbb", x, np.array([3.0, 4.0]))]
        )
        assert "a = aaa" in out and "b = bbb" in out

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_series([("s", np.array([0.0, 1.0]), np.array([1.0, 2.0]))])

    def test_linear_axis_allows_zero(self):
        out = ascii_series(
            [("s", np.array([0.0, 1.0]), np.array([1.0, 2.0]))], x_log=False
        )
        assert "s = s" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series([])

    def test_flat_series_does_not_crash(self):
        out = ascii_series(
            [("s", np.array([1.0, 2.0]), np.array([3.0, 3.0]))]
        )
        assert "s" in out


class TestAsciiBode:
    def test_two_panels(self):
        f = np.array([1.0, 5.0, 20.0])
        r = BodeResponse(f, np.array([0.0, 4.0, -8.0]),
                         np.array([-5.0, -45.0, -100.0]), "meas")
        out = ascii_bode([r], title="fig")
        assert "magnitude" in out
        assert "phase" in out
        assert out.count("m = meas") == 2
