"""The four-step self-test."""

import pytest

from repro.analysis.second_order import SecondOrderParameters
from repro.core.limits import TestLimits
from repro.core.monitor import SweepPlan
from repro.core.selftest import PLLSelfTest, SelfTestReport, SelfTestStep
from repro.pll.faults import Fault, FaultKind, apply_fault
from repro.presets import paper_pll
from repro.stimulus import SineFMStimulus

PLAN = SweepPlan((1.0, 3.0, 5.5, 7.5, 9.5, 14.0, 25.0))


@pytest.fixture(scope="module")
def limits():
    pll = paper_pll()
    golden = SecondOrderParameters(pll.natural_frequency(), pll.damping())
    return TestLimits.from_golden(golden, rel_tol=0.25, peak_tol_db=1.5)


def make_selftest(pll, limits, config):
    return PLLSelfTest(
        pll=pll,
        stimulus=SineFMStimulus(1000.0, 1.0),
        plan=PLAN,
        limits=limits,
        config=config,
    )


class TestHealthyDevice:
    @pytest.fixture(scope="class")
    def report(self, limits, fast_bist_config):
        return make_selftest(paper_pll(), limits, fast_bist_config).run()

    def test_overall_pass(self, report):
        assert report.passed, str(report)

    def test_all_four_steps_executed(self, report):
        names = [s.name for s in report.steps]
        assert names == [
            "lock", "nominal frequency", "hold droop", "transfer function"
        ]

    def test_sweep_artifacts_attached(self, report):
        assert report.sweep is not None
        assert report.limit_report is not None
        assert report.limit_report.passed

    def test_report_renders(self, report):
        text = str(report)
        assert "[PASS] lock" in text
        assert "overall: PASS" in text


class TestDefectiveDevices:
    def test_leaky_cap_fails_droop_screen(self, limits, fast_bist_config):
        # Mild leak: static phase offset stays inside the 2% lock
        # window, so the defect only shows up when the hold lets the
        # capacitor walk.
        leaky = apply_fault(
            paper_pll(), Fault(FaultKind.LEAKY_CAPACITOR, 50e6)
        )
        report = make_selftest(leaky, limits, fast_bist_config).run()
        assert not report.passed
        by_name = {s.name: s for s in report.steps}
        assert "hold droop" in by_name
        assert not by_name["hold droop"].passed
        # Short-circuit: the expensive sweep never ran.
        assert "transfer function" not in by_name

    def test_parametric_fault_reaches_sweep_and_fails(
        self, limits, fast_bist_config
    ):
        faulty = apply_fault(
            paper_pll(), Fault(FaultKind.VCO_GAIN_SHIFT, 0.5)
        )
        report = make_selftest(faulty, limits, fast_bist_config).run()
        assert not report.passed
        by_name = {s.name: s for s in report.steps}
        # Lock, frequency and droop are all fine — only the transfer
        # function exposes a parametric Ko shift.
        assert by_name["lock"].passed
        assert by_name["nominal frequency"].passed
        assert by_name["hold droop"].passed
        assert not by_name["transfer function"].passed

    def test_severe_leak_fails_lock(self, limits, fast_bist_config):
        dead = apply_fault(
            paper_pll(), Fault(FaultKind.LEAKY_CAPACITOR, 100e3)
        )
        report = make_selftest(dead, limits, fast_bist_config).run()
        assert not report.passed
        assert report.steps[0].name == "lock"
        assert not report.steps[0].passed
        assert len(report.steps) == 1  # short-circuited immediately


class TestReportSemantics:
    def test_empty_report_fails(self):
        assert not SelfTestReport().passed

    def test_step_str(self):
        s = SelfTestStep("lock", True, "ok")
        assert str(s) == "[PASS] lock: ok"
