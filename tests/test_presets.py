"""The reconstructed Table 3 design point."""

import pytest

from repro.presets import (
    PAPER_DCO_MASTER_HZ,
    PAPER_DEVIATION_HZ,
    PAPER_F_REF,
    PAPER_FM_STEPS,
    PAPER_N,
    paper_bist_config,
    paper_dco,
    paper_pll,
    paper_second_order_summary,
    paper_stimulus,
    paper_sweep,
)
from repro.stimulus import (
    MultiToneFSKStimulus,
    SineFMStimulus,
    TwoToneFSKStimulus,
)


class TestPaperPLL:
    def test_anchors(self):
        """Every legible Table 3 anchor must hold."""
        pll = paper_pll()
        assert pll.n == 5
        assert pll.f_ref == 1000.0
        assert pll.natural_frequency_hz() == pytest.approx(8.74, abs=0.1)
        assert pll.damping() == pytest.approx(0.43, abs=0.01)

    def test_linear_and_nonlinear_variants_differ(self):
        lin = paper_pll()
        non = paper_pll(nonlinear=True)
        assert lin.vco.tuning_curve is None
        assert non.vco.tuning_curve is not None
        assert non.pump.r_up > 0.0

    def test_custom_name(self):
        assert paper_pll(name="dut7").name == "dut7"


class TestPaperStimuli:
    def test_kinds(self):
        assert isinstance(paper_stimulus("sine"), SineFMStimulus)
        assert isinstance(paper_stimulus("twotone"), TwoToneFSKStimulus)
        assert isinstance(paper_stimulus("multitone"), MultiToneFSKStimulus)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            paper_stimulus("square")

    def test_multitone_uses_ten_steps_and_dco(self):
        stim = paper_stimulus("multitone")
        assert stim.steps == PAPER_FM_STEPS == 10
        assert stim.dco is not None
        assert stim.dco.f_master == PAPER_DCO_MASTER_HZ

    def test_deviation_within_linear_range(self):
        """|E(jwn)| * 2*pi*dF/fn must stay well inside the PFD range."""
        import math

        pll = paper_pll()
        fn = pll.natural_frequency_hz()
        theta_e = 2 * math.pi * PAPER_DEVIATION_HZ / fn * 1.2  # |E| <~ 1.2
        assert theta_e < math.pi

    def test_dco_resolution_gives_ten_usable_steps(self):
        dco = paper_dco()
        res = dco.resolution(PAPER_F_REF)
        assert PAPER_DEVIATION_HZ / res == pytest.approx(10.0, rel=0.01)


class TestPaperSweepAndConfig:
    def test_sweep_covers_decade_around_fn(self):
        plan = paper_sweep(points=10)
        assert len(plan.frequencies_hz) == 10
        fn = paper_pll().natural_frequency_hz()
        assert plan.frequencies_hz[0] < fn / 4
        assert plan.frequencies_hz[-1] > 4 * fn

    def test_config_compatible_with_paper_pfd(self):
        cfg = paper_bist_config()
        cfg.validate_against_pfd(paper_pll().pfd_reset_delay)

    def test_summary_text(self):
        text = paper_second_order_summary()
        assert "fn=8.7" in text
        assert "zeta" in text
