"""Public API surface: everything advertised resolves and is documented."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.pll",
    "repro.analysis",
    "repro.stimulus",
    "repro.core",
    "repro.reporting",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_names_importable(self):
        # The README quickstart imports, verbatim.
        from repro import (  # noqa: F401
            TransferFunctionMonitor,
            paper_bist_config,
            paper_pll,
            paper_stimulus,
            paper_sweep,
        )


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        mod = importlib.import_module(module_name)
        assert mod.__doc__, f"{module_name} lacks a docstring"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_objects_documented(self, module_name):
        mod = importlib.import_module(module_name)
        for name in mod.__all__:
            obj = getattr(mod, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


class TestErrorSurface:
    def test_every_public_error_exported_top_level(self):
        from repro import errors

        for name in errors.__all__:
            assert hasattr(repro, name), name
