"""Root solvers for edge-crossing times."""

import math

import pytest

from repro.errors import ConvergenceError
from repro.sim.solvers import bisect_increasing, solve_increasing


class TestBisect:
    def test_linear(self):
        x = bisect_increasing(lambda t: 2.0 * t, 0.0, 10.0, 5.0)
        assert x == pytest.approx(2.5, abs=1e-10)

    def test_endpoint_hits(self):
        assert bisect_increasing(lambda t: t, 0.0, 1.0, 0.0) == 0.0
        assert bisect_increasing(lambda t: t, 0.0, 1.0, 1.0) == 1.0

    def test_not_bracketed(self):
        with pytest.raises(ConvergenceError):
            bisect_increasing(lambda t: t, 0.0, 1.0, 2.0)
        with pytest.raises(ConvergenceError):
            bisect_increasing(lambda t: t, 1.0, 2.0, 0.5)

    def test_nonlinear(self):
        x = bisect_increasing(lambda t: t ** 3, 0.0, 2.0, 1.0)
        assert x == pytest.approx(1.0, abs=1e-10)


class TestSolveIncreasing:
    def test_with_derivative_converges_fast(self):
        fn = lambda t: t + math.sin(t) * 0.1
        dfn = lambda t: 1.0 + math.cos(t) * 0.1
        x = solve_increasing(fn, 1.0, 0.0, 3.0, derivative=dfn)
        assert fn(x) == pytest.approx(1.0, abs=1e-10)

    def test_without_derivative(self):
        x = solve_increasing(lambda t: math.exp(t) - 1.0, 1.0, 0.0, 2.0)
        assert x == pytest.approx(math.log(2.0), abs=1e-10)

    def test_exponential_phase_like(self):
        # Shape of a VCO phase integral under exponential control drift.
        f0, k, tau = 5000.0, 100.0, 0.2
        fn = lambda t: f0 * t + k * tau * (1.0 - math.exp(-t / tau))
        dfn = lambda t: f0 + k * math.exp(-t / tau)
        target = 5.0
        x = solve_increasing(fn, target, 0.0, 2e-3, derivative=dfn)
        assert fn(x) == pytest.approx(target, abs=1e-8)

    def test_endpoint_exact(self):
        assert solve_increasing(lambda t: t, 0.0, 0.0, 1.0) == 0.0
        assert solve_increasing(lambda t: t, 1.0, 0.0, 1.0) == 1.0

    def test_not_bracketed_raises(self):
        with pytest.raises(ConvergenceError):
            solve_increasing(lambda t: t, 5.0, 0.0, 1.0)

    def test_flat_function_falls_back_to_bisection(self):
        # Zero derivative everywhere except the jump: Newton unusable.
        fn = lambda t: 0.0 if t < 0.5 else 1.0
        x = solve_increasing(fn, 0.5, 0.0, 1.0, derivative=lambda t: 0.0)
        assert x == pytest.approx(0.5, abs=1e-9)

    def test_tolerance_respected(self):
        fn = lambda t: t
        x = solve_increasing(fn, 0.333333, 0.0, 1.0, tol=1e-12)
        assert abs(x - 0.333333) < 1e-11

    def test_misleading_derivative_still_converges(self):
        # A wrong derivative must not break bracketing safety.
        fn = lambda t: t ** 2
        bad_dfn = lambda t: 100.0
        x = solve_increasing(fn, 0.25, 0.0, 1.0, derivative=bad_dfn)
        assert x == pytest.approx(0.5, abs=1e-9)
