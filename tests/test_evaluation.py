"""Equations (7) and (8) plus the capacitor-node correction."""

import math

import numpy as np
import pytest

from repro.core.evaluation import (
    evaluate_sweep,
    magnitude_db_eq7,
    phase_deg_eq8,
)
from repro.errors import MeasurementError


class TestEq7:
    def test_unity_ratio_is_zero_db(self):
        assert magnitude_db_eq7(5.0, 5.0) == pytest.approx(0.0)

    def test_double_is_six_db(self):
        assert magnitude_db_eq7(10.0, 5.0) == pytest.approx(6.0206, abs=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(MeasurementError):
            magnitude_db_eq7(0.0, 5.0)
        with pytest.raises(MeasurementError):
            magnitude_db_eq7(5.0, 0.0)
        with pytest.raises(MeasurementError):
            magnitude_db_eq7(-1.0, 5.0)


class TestEq8:
    def test_quarter_period_is_90_degrees(self):
        # 2500 pulses of a 1 MHz clock = 2.5 ms = 1/4 of a 10 ms period.
        assert phase_deg_eq8(2500, 1e6, 0.01) == pytest.approx(-90.0)

    def test_lag_is_negative(self):
        assert phase_deg_eq8(100, 1e6, 0.01) < 0.0

    def test_wraps_into_one_turn(self):
        # 1.25 periods of lag reads as -90 (mod 360).
        assert phase_deg_eq8(12500, 1e6, 0.01) == pytest.approx(-90.0)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            phase_deg_eq8(1, 0.0, 0.01)
        with pytest.raises(MeasurementError):
            phase_deg_eq8(1, 1e6, 0.0)


class TestEvaluateSweep:
    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            evaluate_sweep([])

    def test_sweep_references_lowest_tone(self, sine_sweep_result):
        raw = evaluate_sweep(sine_sweep_result.measurements)
        assert raw.magnitude_db[0] == pytest.approx(0.0)
        assert raw.frequencies_hz[0] == min(raw.frequencies_hz)

    def test_sorting(self, sine_sweep_result):
        shuffled = list(reversed(sine_sweep_result.measurements))
        r = evaluate_sweep(shuffled)
        assert np.all(np.diff(r.frequencies_hz) > 0)

    def test_zero_correction_raises_magnitude_above_raw(
        self, sine_sweep_result
    ):
        ms = sine_sweep_result.measurements
        tau2 = 33e3 * 470e-9
        raw = evaluate_sweep(ms)
        corrected = evaluate_sweep(ms, zero_correction_tau=tau2)
        # Correction grows with frequency; above the first tone it adds.
        assert np.all(
            corrected.magnitude_db[1:] >= raw.magnitude_db[1:] - 1e-9
        )
        # And phases move toward zero (less lag).
        assert np.all(corrected.phase_deg >= raw.phase_deg)

    def test_zero_correction_rezeroes_reference(self, sine_sweep_result):
        ms = sine_sweep_result.measurements
        corrected = evaluate_sweep(ms, zero_correction_tau=33e3 * 470e-9)
        assert corrected.magnitude_db[0] == pytest.approx(0.0)

    def test_negative_tau_rejected(self, sine_sweep_result):
        with pytest.raises(MeasurementError):
            evaluate_sweep(
                sine_sweep_result.measurements, zero_correction_tau=-1.0
            )

    def test_explicit_reference_measurement(self, sine_sweep_result):
        ms = sine_sweep_result.measurements
        r = evaluate_sweep(ms, reference=ms[2])
        ref_f = sorted(m.f_mod for m in ms)[2]
        idx = int(np.argmin(np.abs(r.frequencies_hz - ref_f)))
        assert r.magnitude_db[idx] == pytest.approx(0.0, abs=1e-12)

    def test_label_propagates(self, sine_sweep_result):
        r = evaluate_sweep(sine_sweep_result.measurements, label="abc")
        assert r.label == "abc"
