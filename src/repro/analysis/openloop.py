"""Open-loop stability margins.

The closed-loop peaking the BIST measures and the open-loop phase margin
designers quote are two views of the same damping; this module provides
the open-loop view — gain crossover, phase margin, gain margin — from
the same component-exact ``G(s)`` used everywhere else, so measured
(fn, ζ) shifts can be reported to a designer in their native units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.pll.config import ChargePumpPLL

__all__ = ["StabilityMargins", "loop_stability"]


@dataclass(frozen=True)
class StabilityMargins:
    """Open-loop stability summary."""

    crossover_hz: float          # |G| = 1
    phase_margin_deg: float      # 180 + angle(G) at crossover
    gain_margin_db: float        # -|G|dB where angle(G) = -180 (inf if never)

    @property
    def stable(self) -> bool:
        """Positive phase margin (the loops built here are minimum
        phase, so this is the whole stability story)."""
        return self.phase_margin_deg > 0.0

    def __str__(self) -> str:
        gm = (
            f"{self.gain_margin_db:.1f} dB"
            if math.isfinite(self.gain_margin_db)
            else "inf"
        )
        return (
            f"StabilityMargins(crossover={self.crossover_hz:.4g} Hz, "
            f"PM={self.phase_margin_deg:.1f} deg, GM={gm})"
        )


def loop_stability(
    pll: ChargePumpPLL,
    f_lo: float = None,
    f_hi: float = None,
    points: int = 20001,
) -> StabilityMargins:
    """Compute the margins of ``G(jω)`` on a log grid + refinement.

    The default grid spans four decades around the loop's natural
    frequency (or around ``f_ref/100`` when no second-order
    parameterisation exists).
    """
    if points < 100:
        raise ConfigurationError(f"points must be >= 100, got {points!r}")
    try:
        fn = pll.natural_frequency() / (2.0 * math.pi)
    except Exception:
        fn = pll.f_ref / 100.0
    f_lo = f_lo if f_lo is not None else fn / 100.0
    f_hi = f_hi if f_hi is not None else fn * 100.0
    if not (0.0 < f_lo < f_hi):
        raise ConfigurationError(
            f"need 0 < f_lo < f_hi, got {f_lo!r}, {f_hi!r}"
        )
    f = np.logspace(math.log10(f_lo), math.log10(f_hi), points)
    g = pll.open_loop_transfer(1j * 2.0 * np.pi * f)
    mag = np.abs(g)
    if mag[0] <= 1.0 or mag[-1] >= 1.0:
        raise ConfigurationError(
            "gain crossover not bracketed by the search grid; widen "
            f"[{f_lo!r}, {f_hi!r}]"
        )
    # Crossover: first index where |G| falls below 1, log-interpolated.
    idx = int(np.nonzero(mag < 1.0)[0][0])
    x0, x1 = math.log10(f[idx - 1]), math.log10(f[idx])
    m0, m1 = math.log10(mag[idx - 1]), math.log10(mag[idx])
    frac = m0 / (m0 - m1)
    f_x = 10.0 ** (x0 + frac * (x1 - x0))
    g_x = pll.open_loop_transfer(1j * 2.0 * math.pi * f_x)
    phase_margin = 180.0 + math.degrees(math.atan2(g_x.imag, g_x.real))

    # Gain margin: phase(G) = -180 crossing, if any.
    phase = np.degrees(np.unwrap(np.angle(g)))
    below = np.nonzero(phase <= -180.0)[0]
    if below.size == 0:
        gain_margin = math.inf
    else:
        j = int(below[0])
        gain_margin = -20.0 * math.log10(float(mag[j]))
    return StabilityMargins(
        crossover_hz=float(f_x),
        phase_margin_deg=float(phase_margin),
        gain_margin_db=float(gain_margin),
    )
