"""The Table 2 test sequence, one modulation tone at a time.

:class:`ToneTestSequencer` drives a fresh closed-loop simulation through
the paper's five stages for a single modulation frequency ``FN``:

===== =====================================================================
stage action (Table 2)
===== =====================================================================
0     Ref set: modulation applied at FN, loop closed and settling from lock
1     Set phase counter: started at the peak of the input modulation
2     Monitor peak: the Figure 7 detector watches for the output-frequency
      maximum
3     Peak occurred: the MFREQ pulse *itself* switches the hold mux
      (A=C, A=D) and stops the phase counter — within the same PFD cycle,
      exactly as hard-wired logic would
4     Measure: the reciprocal frequency counter reads the held (frozen)
      output frequency; both counters' results are stored
===== =====================================================================

Stage 5 of the table — "increase FN and repeat" — is the sweep loop of
:class:`~repro.core.monitor.TransferFunctionMonitor`.

Every stage transition is logged with its time, so tests can assert the
sequence matches the paper's table ordering.
"""

from __future__ import annotations

import enum
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Hashable, List, Optional, Tuple, Union

from repro.core.architecture import BISTConfig
from repro.core.counters import FrequencyCounter, PhaseCount, PhaseCounter
from repro.core.hold import HeldFrequencyResult
from repro.core.peak_detector import PeakEvent, PeakFrequencyDetector
from repro.core.warm import LockStateCache
from repro.errors import ConfigurationError, LockError, MeasurementError
from repro.pll.config import ChargePumpPLL
from repro.pll.simulator import PLLTransientSimulator, RecordLevel
from repro.stimulus.modulation import ModulatedStimulus

__all__ = [
    "MeasurementScript",
    "TestStage",
    "ToneMeasurement",
    "ToneTestSequencer",
    "ToneTiming",
    "NominalFrequencyMemoStats",
    "nominal_frequency_memo_stats",
    "predicted_peak_delay",
    "set_nominal_frequency_memo_limit",
    "reset_nominal_frequency_memo",
]

#: Process-wide memo for :meth:`ToneTestSequencer.measure_nominal_frequency`,
#: keyed on (physics signature, f_nominal, test clock, record level,
#: gate_cycles) — never on the device *object*, so renamed same-physics
#: dies (a vectorised lot, a repeated library fault) share one measured
#: baseline.  Entries are single floats; the cap is a leak guard for
#: very long-lived processes, evicting least-recently-used first.  The
#: cap is configurable (:func:`set_nominal_frequency_memo_limit`) so
#: population screens with mostly-unique physics can size it to their
#: chunking instead of silently thrashing the default; hit/miss/eviction
#: counters are visible via :func:`nominal_frequency_memo_stats`.
_NOMINAL_FREQUENCY_MEMO: "OrderedDict[Hashable, float]" = OrderedDict()
_NOMINAL_FREQUENCY_MEMO_DEFAULT_MAX = 4096
_NOMINAL_FREQUENCY_MEMO_MAX = _NOMINAL_FREQUENCY_MEMO_DEFAULT_MAX
_NOMINAL_FREQUENCY_MEMO_HITS = 0
_NOMINAL_FREQUENCY_MEMO_MISSES = 0
_NOMINAL_FREQUENCY_MEMO_EVICTIONS = 0


@dataclass(frozen=True)
class NominalFrequencyMemoStats:
    """Point-in-time counters for the nominal-frequency memo."""

    hits: int
    misses: int
    evictions: int
    size: int
    limit: int


def nominal_frequency_memo_stats() -> NominalFrequencyMemoStats:
    """Snapshot the process-wide memo's hit/miss/eviction counters."""
    return NominalFrequencyMemoStats(
        hits=_NOMINAL_FREQUENCY_MEMO_HITS,
        misses=_NOMINAL_FREQUENCY_MEMO_MISSES,
        evictions=_NOMINAL_FREQUENCY_MEMO_EVICTIONS,
        size=len(_NOMINAL_FREQUENCY_MEMO),
        limit=_NOMINAL_FREQUENCY_MEMO_MAX,
    )


def set_nominal_frequency_memo_limit(limit: int) -> int:
    """Resize the memo cap; returns the previous cap.

    A 10k-die population with mostly-unique physics would thrash the
    default 4096-entry cap (one insert-evict churn per die with zero
    reuse); the population engine sizes the cap to its chunk structure
    instead.  Shrinking below the current fill evicts least-recently-
    used entries immediately (counted as evictions).
    """
    global _NOMINAL_FREQUENCY_MEMO_MAX, _NOMINAL_FREQUENCY_MEMO_EVICTIONS
    if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
        raise ConfigurationError(
            f"nominal-frequency memo limit must be an int >= 1, got {limit!r}"
        )
    previous = _NOMINAL_FREQUENCY_MEMO_MAX
    _NOMINAL_FREQUENCY_MEMO_MAX = limit
    while len(_NOMINAL_FREQUENCY_MEMO) > limit:
        _NOMINAL_FREQUENCY_MEMO.popitem(last=False)
        _NOMINAL_FREQUENCY_MEMO_EVICTIONS += 1
    return previous


def reset_nominal_frequency_memo(restore_default_limit: bool = False) -> None:
    """Clear the memo's entries and counters (test/bench isolation)."""
    global _NOMINAL_FREQUENCY_MEMO_HITS, _NOMINAL_FREQUENCY_MEMO_MISSES
    global _NOMINAL_FREQUENCY_MEMO_EVICTIONS, _NOMINAL_FREQUENCY_MEMO_MAX
    _NOMINAL_FREQUENCY_MEMO.clear()
    _NOMINAL_FREQUENCY_MEMO_HITS = 0
    _NOMINAL_FREQUENCY_MEMO_MISSES = 0
    _NOMINAL_FREQUENCY_MEMO_EVICTIONS = 0
    if restore_default_limit:
        _NOMINAL_FREQUENCY_MEMO_MAX = _NOMINAL_FREQUENCY_MEMO_DEFAULT_MAX


class TestStage(enum.Enum):
    """Stages of Table 2 (plus a terminal DONE marker)."""

    __test__ = False  # not a pytest test class despite the name

    REF_SET = 0
    SET_PHASE_COUNTER = 1
    MONITOR_PEAK = 2
    PEAK_OCCURRED = 3
    MEASURE = 4
    DONE = 5


@dataclass(frozen=True)
class ToneTiming:
    """Wall-clock breakdown of one tone's Table 2 sequence.

    ``settle_s`` covers stage 0 (cache restore *or* closed-loop
    settling), ``monitor_s`` stages 1–3 (arm, watch for the peak) and
    ``measure_s`` stage 4 (hold-and-count).  ``warm`` records whether
    stage 0 was served from a :class:`~repro.core.warm.LockStateCache`
    hit instead of being simulated.  Timing is observability only — it
    never participates in measurement-equality comparisons.
    """

    settle_s: float
    monitor_s: float
    measure_s: float
    warm: bool = False

    @property
    def total_s(self) -> float:
        """Whole-tone wall time."""
        return self.settle_s + self.monitor_s + self.measure_s


@dataclass
class ToneMeasurement:
    """Everything the BIST stores for one modulation frequency."""

    f_mod: float
    modulation_period: float
    held: HeldFrequencyResult
    phase_count: PhaseCount
    f_out_nominal: float
    arm_time: float
    peak_event: PeakEvent
    stage_log: List[Tuple[TestStage, float]] = field(default_factory=list)
    # Wall-clock observability; excluded from equality so measurement
    # comparisons stay about measured values.
    timing: Optional[ToneTiming] = field(default=None, compare=False)

    @property
    def delta_f_hz(self) -> float:
        """Measured peak output-frequency deviation ``ΔF`` (eq. 7's input)."""
        return self.held.vco_frequency_hz - self.f_out_nominal

    @property
    def phase_delay_deg(self) -> float:
        """Eq. (8) phase lag between input and output modulation peaks."""
        return self.phase_count.phase_delay_deg(self.modulation_period)

    def __str__(self) -> str:
        return (
            f"ToneMeasurement(f_mod={self.f_mod:.4g} Hz, "
            f"dF={self.delta_f_hz:+.4g} Hz, "
            f"phase={-self.phase_delay_deg:.1f} deg)"
        )


def predicted_peak_delay(pll: ChargePumpPLL, f_mod: float) -> Optional[float]:
    """Predicted lag of the output-modulation peak behind the input peak.

    The linearised closed-loop transfer function
    ``H(s) = (2ζωₙs + ωₙ²) / (s² + 2ζωₙs + ωₙ²)`` delays the output
    envelope by ``-∠H(jω)/ω`` seconds at the tone frequency, so the
    MFREQ pulse is expected that long after the arm instant.  The
    monitor stage uses the prediction to step straight to the polling
    boundary just *before* the expected peak window instead of visiting
    every quarter-period boundary from the arm onwards.

    Returns ``None`` when the linearisation is unavailable (exotic
    device models) or the delay falls outside ``(0, 1/f_mod)`` —
    callers then poll from the first quarter boundary exactly as the
    unpredicted path always has.
    """
    try:
        wn = pll.natural_frequency()
        zeta = pll.damping(exact=True)
    except Exception:  # noqa: BLE001 - exotic device: no linearisation
        return None
    w = 2.0 * math.pi * f_mod
    lead = math.atan2(2.0 * zeta * wn * w, wn * wn)
    lag = math.atan2(2.0 * zeta * wn * w, wn * wn - w * w)
    delay = (lag - lead) / w
    if not math.isfinite(delay) or not (0.0 < delay < 1.0 / f_mod):
        return None
    return delay


class MeasurementScript:
    """Stages 1–4 of Table 2 as an explicit boundary-driven state machine.

    The scalar sequencer's stages 1–4 are a sequence of *run-to-target*
    steps: run to the arm instant, poll quarter-period boundaries until
    the MFREQ capture, flush the charge pump, grow the feedback-edge
    window until the reciprocal count fits, count.  This class is that
    control flow with the simulator advance factored out: callers ask
    :meth:`next_target` where to run, advance their engine (the scalar
    event loop *or* one lane of the vectorized farm) to exactly that
    time, and call :meth:`advance` to fire the stage logic at the
    boundary.  Every floating-point expression — target arithmetic,
    counter calls, error messages — is the scalar sequencer's own, so
    any engine that reproduces the simulator's event stream reproduces
    the scalar measurement bit-for-bit, stage log included.

    States: ``ARM`` (run to the arm instant) → ``MONITOR`` (stages 2–3,
    poll for the capture) → ``FLUSH`` (let the in-flight pump pulse
    finish) → ``HOLD`` (stage 4, grow the count window) → ``DONE``.
    The MFREQ capture itself arrives *between* boundaries, via
    :meth:`capture_event` (scalar observer callback) or :meth:`capture`
    (farm latch kernel).

    ``probe`` arguments duck-type the simulator surface the stages
    read: ``output_frequency``, ``fb_edges`` (with ``count_in_gate``
    and the counter protocol) and ``close_loop()``.
    """

    ARM = "arm"
    MONITOR = "monitor"
    FLUSH = "flush"
    HOLD = "hold"
    DONE = "done"

    def __init__(
        self,
        pll: ChargePumpPLL,
        stimulus: ModulatedStimulus,
        config: BISTConfig,
        f_mod: float,
        arm_index: int,
        max_wait_cycles: float = 3.0,
    ) -> None:
        self.pll = pll
        self.config = config
        self.f_mod = f_mod
        self.t_mod = 1.0 / f_mod
        self.max_wait_cycles = max_wait_cycles
        self.t_arm = stimulus.modulation_peak_time(
            f_mod, start_time=0.0, index=arm_index
        )
        self.deadline = self.t_arm + max_wait_cycles * self.t_mod
        # Boundaries skipped straight to the predicted peak window.  The
        # visited boundaries are a suffix of the exact capped recurrence
        # ``t = min(t + 0.25·t_mod, deadline)`` the full poll walks, so
        # a capture noticed at boundary k is noticed at the bit-same
        # instant whether or not earlier boundaries were visited.
        delay = predicted_peak_delay(pll, f_mod)
        self._k0 = 1
        if delay is not None:
            self._k0 = max(1, int(math.floor(delay / (0.25 * self.t_mod))))
        self.stage_log: List[Tuple[TestStage, float]] = [
            (TestStage.REF_SET, 0.0)
        ]
        self.phase_counter = PhaseCounter(config.test_clock_hz)
        self.freq_counter = FrequencyCounter(config.test_clock_hz)
        self.state = self.ARM
        self.captured = False
        self.event: Optional[PeakEvent] = None
        self.phase_count: Optional[PhaseCount] = None
        self.held: Optional[HeldFrequencyResult] = None
        self.t_engage = 0.0
        self._f_at_engage = 0.0
        self._f_fb_estimate = 0.0
        self._hold_checks = 0
        self._finish_pending = False
        self._target: Optional[float] = self.t_arm

    @property
    def monitoring(self) -> bool:
        """True while in stages 1–3 (the monitor wall-time bucket)."""
        return self.state in (self.ARM, self.MONITOR)

    def next_target(self) -> Optional[float]:
        """Simulation time to advance to next; ``None`` once DONE."""
        return self._target

    def capture_event(self, event: PeakEvent) -> bool:
        """Scalar observer callback: the detector emitted ``event``.

        Returns True when this event is *the* capture (first MFREQ
        maximum after the arm) — the caller must then open the loop, as
        the hold mux flips within the same PFD cycle.
        """
        if self.captured or not event.is_maximum or event.time <= self.t_arm:
            return False
        self.event = event
        self.phase_count = self.phase_counter.stop(event.time)
        self.captured = True
        return True

    def capture(self, t_event: float) -> None:
        """Farm capture: the batched latch fired its maximum at ``t_event``.

        The caller has already applied the scalar guard (first maximum
        strictly after the arm instant) in array form.
        """
        self.event = PeakEvent(time=t_event, is_maximum=True)
        self.phase_count = self.phase_counter.stop(t_event)
        self.captured = True

    def advance(self, now: float, probe) -> None:
        """Fire the stage logic at boundary ``now`` (= the last target)."""
        if self.state == self.ARM:
            self.phase_counter.start(self.t_arm)
            self.stage_log.append((TestStage.SET_PHASE_COUNTER, self.t_arm))
            self.stage_log.append((TestStage.MONITOR_PEAK, self.t_arm))
            self.state = self.MONITOR
            t_next = self.t_arm
            for _ in range(self._k0):
                t_next = min(t_next + 0.25 * self.t_mod, self.deadline)
            self._target = t_next
            return
        if self.state == self.MONITOR:
            if self.captured:
                assert self.event is not None
                self.stage_log.append(
                    (TestStage.PEAK_OCCURRED, self.event.time)
                )
                self.stage_log.append((TestStage.MEASURE, now))
                self.t_engage = now
                self.state = self.FLUSH
                # Two reference periods guarantee the pump is back to
                # tri-state before the control node is sampled.
                self._target = now + 2.0 / self.pll.f_ref
                return
            if now >= self.deadline:
                self.phase_counter.abort()
                raise MeasurementError(
                    f"peak detector produced no MFREQ within "
                    f"{self.max_wait_cycles:g} modulation cycles at "
                    f"f_mod={self.f_mod:g} Hz"
                )
            self._target = min(now + 0.25 * self.t_mod, self.deadline)
            return
        if self.state == self.FLUSH:
            self._f_at_engage = probe.output_frequency
            self._f_fb_estimate = max(
                self._f_at_engage / self.pll.n,
                self.pll.vco.f_min / self.pll.n,
            )
            self.state = self.HOLD
            # Fall through: the first have-enough-edges check runs at
            # this same instant, as the scalar hold loop's does.
        if self.state == self.HOLD:
            periods = self.config.frequency_count_periods
            if self._finish_pending:
                self._finish(now, probe)
                return
            self._hold_checks += 1
            have = probe.fb_edges.count_in_gate(self.t_engage, now + 1e-12)
            if have >= periods + 1:
                self._finish(now, probe)
                return
            missing = periods + 1 - have
            self._target = now + (missing + 2) / self._f_fb_estimate
            if self._hold_checks >= 64:
                # The scalar loop gives up re-estimating after 64 checks
                # and counts whatever the final advance provides.
                self._finish_pending = True
            return
        raise MeasurementError("measurement script already finished")

    def _finish(self, now: float, probe) -> None:
        """Stage 4 proper: reciprocal-count the held frequency."""
        measurement = self.freq_counter.measure_reciprocal(
            probe.fb_edges,
            start=self.t_engage,
            periods=self.config.frequency_count_periods,
        ).scaled(self.pll.n)
        f_at_release = probe.output_frequency
        probe.close_loop()
        self.held = HeldFrequencyResult(
            vco_frequency_hz=measurement.frequency_hz,
            measurement=measurement,
            engage_time=self.t_engage,
            frequency_at_engage=self._f_at_engage,
            frequency_at_release=f_at_release,
        )
        self.stage_log.append((TestStage.DONE, now))
        self.state = self.DONE
        self._target = None


class ToneTestSequencer:
    """Run Table 2 stages 0–4 for one tone.

    Parameters
    ----------
    pll:
        Device under test.
    stimulus:
        Modulated-reference family (sine FM / FSK).
    config:
        On-chip test-hardware parameters.
    record:
        Recording level for the per-tone simulations.  The sequence only
        reads the rising-edge trains and the PFD cycle records — none of
        the analogue traces — so ``"counters"`` (the default) skips the
        three per-event trace appends without changing any measured
        value.  Pass ``"full"`` to keep the traces (e.g. for the figure
        benches that plot a tone's waveforms).
    cache:
        Optional :class:`~repro.core.warm.LockStateCache` of settled
        stage-0 states.  With a cache, re-running a tone restores the
        settled loop instead of re-simulating the settle — warm runs are
        bit-identical to cold runs (snapshot guarantee) and skip the
        dominant share of the per-tone work.
    """

    def __init__(
        self,
        pll: ChargePumpPLL,
        stimulus: ModulatedStimulus,
        config: BISTConfig = BISTConfig(),
        record: Union[RecordLevel, str] = RecordLevel.COUNTERS,
        cache: Optional[LockStateCache] = None,
    ) -> None:
        config.validate_against_pfd(pll.pfd_reset_delay)
        self.pll = pll
        self.stimulus = stimulus
        self.config = config
        self.cache = cache
        self.record_level = RecordLevel.coerce(record)
        if self.record_level is RecordLevel.OFF:
            raise ConfigurationError(
                "the Table 2 sequence reads the rising-edge trains; "
                "use record='counters' or record='full'"
            )
        #: Control voltage after the most recent tone released its hold —
        #: the natural seed for the next tone's adaptive settle.
        self.last_release_voltage: Optional[float] = None

    # ------------------------------------------------------------------
    # stage-0 helpers
    # ------------------------------------------------------------------
    def _settle_cache_key(self, f_mod: float) -> Hashable:
        """Everything that determines the settled stage-0 state.

        Keyed by the device's *physics signature* rather than its name,
        so behaviourally identical devices — every same-configuration
        die of a lot, or every repeat of the same injected fault across
        a fault-library screen — share settled states, while any
        component shift (i.e. a different fault) keys apart.
        """
        return (
            self.pll.physics_signature(),
            self.stimulus.cache_key(),
            float(f_mod),
            self.config.settle_cycles,
            self.record_level.value,
        )

    def _modulated_lock_tolerance(self, f_mod: float) -> float:
        """Lock tolerance (reference cycles) that accommodates the tone.

        Under modulation the locked loop's phase error never goes to
        zero: it oscillates with amplitude
        ``|E(jω_m)| · deviation / (2π f_mod)`` cycles, where ``E`` is
        the loop's phase-*error* transfer function
        ``s² / (s² + 2ζω_n s + ω_n²)``.  The adaptive settle's lock
        check must tolerate that steady-state excursion or it would
        never declare lock; the configured
        :attr:`~repro.core.architecture.BISTConfig.lock_tolerance_cycles`
        rides on top as the transient-residual budget.
        """
        base = self.config.lock_tolerance_cycles
        try:
            wn = self.pll.natural_frequency()
            zeta = self.pll.damping(exact=True)
        except Exception:
            return base + 0.05
        wm = 2.0 * math.pi * f_mod
        err_mag = wm * wm / math.hypot(wn * wn - wm * wm, 2.0 * zeta * wn * wm)
        excursion = err_mag * self.stimulus.deviation / (2.0 * math.pi * f_mod)
        return base + 1.5 * excursion

    def _loop_time_constant(self) -> float:
        """The loop's dominant transient decay time ``1/(ζ·ωn)`` (s).

        Returns 0.0 when the linearisation is unavailable (exotic
        device models) so callers degrade to no-floor behaviour.
        """
        try:
            return 1.0 / (
                self.pll.damping(exact=True) * self.pll.natural_frequency()
            )
        except Exception:
            return 0.0

    def _adaptive_settle(self, sim: PLLTransientSimulator, f_mod: float) -> int:
        """Stage 0 with lock detection instead of a fixed wait.

        Runs :meth:`~repro.pll.simulator.PLLTransientSimulator.run_until_locked`
        with a modulation-aware tolerance and a timeout equal to the
        fixed settle duration, then returns the modulation-peak index at
        which to arm the phase counter — one full modulation cycle after
        lock, but never later than the fixed policy would arm.  If lock
        is not declared within the fixed window the sequencer falls back
        to the fixed arm index, so the adaptive mode can only save time,
        never add it.

        Lock detection alone is not sufficient for tones far above the
        loop bandwidth: their measured deviation sits near counter
        resolution, and the residual control-voltage transient (a phase
        error well inside the lock tolerance) can still bias it.  The
        arm time is therefore floored at a few loop time constants —
        which only bites high-``f_mod`` tones, whose fixed wait is short
        anyway; the slow in-band tones keep the full saving.
        """
        cfg = self.config
        fixed_end = cfg.settle_cycles / f_mod
        try:
            t_lock = sim.run_until_locked(
                tolerance_cycles=self._modulated_lock_tolerance(f_mod),
                timeout=fixed_end,
            )
        except LockError:
            if sim.now < fixed_end:
                sim.run_until(fixed_end)
            return cfg.settle_cycles
        t_floor = 3.0 * self._loop_time_constant()
        # run_until_locked advances in chunks, so the simulator may sit
        # past the lock edge; arm after whichever is latest.
        t_eff = max(t_lock, sim.now, t_floor)
        k = max(1, math.ceil(t_eff * f_mod + 0.75))
        return min(k, cfg.settle_cycles)

    def run(
        self,
        f_mod: float,
        max_wait_cycles: float = 3.0,
        *,
        settle: str = "fixed",
        seed_voltage: Optional[float] = None,
        cache: Optional[LockStateCache] = None,
    ) -> ToneMeasurement:
        """Execute the sequence for modulation frequency ``f_mod`` (Hz).

        ``max_wait_cycles`` bounds how long stage 2 waits for the peak
        detector (in modulation periods) before declaring a failure —
        which *is* a legitimate test outcome for some injected faults.

        ``settle`` selects the stage-0 policy: ``"fixed"`` (the paper's
        Table 2 — wait ``settle_cycles`` modulation periods) or
        ``"adaptive"`` (declare lock via the loop's own edge streams and
        arm one modulation cycle later; falls back to the fixed wait on
        timeout, so it is never slower).  ``seed_voltage`` optionally
        starts the loop from a previous tone's released control voltage
        instead of the computed lock point — with adaptive settling,
        chaining tones this way lets the lock detector finish early.
        Both are deliberate approximations: counted results under
        adaptive settling agree with the fixed policy to counter
        resolution, not bit-for-bit.

        ``cache`` (or the instance-level cache) serves stage 0 from a
        stored settled snapshot when the same (PLL, stimulus, tone,
        settle policy) was settled before; warm runs *are* bit-identical
        to cold runs.  Caching applies only to the reproducible
        configuration — fixed settle from the nominal lock point — and
        only when at least one PFD compare cycle fits between the settle
        end and the arm instant (``8·f_mod ≤ f_ref``) so the deferred
        peak-detector attach is transparent.
        """
        if settle not in ("fixed", "adaptive"):
            raise ConfigurationError(
                f"settle must be 'fixed' or 'adaptive', got {settle!r}"
            )
        cache = cache if cache is not None else self.cache
        cfg = self.config
        t_mod = 1.0 / f_mod
        if seed_voltage is not None:
            # A seed carries the previous tone's modulation ripple.  For
            # tones whose settle window is shorter than a few loop time
            # constants the residual cannot decay before the arm instant
            # and would bias a near-resolution deviation; start those
            # from the nominal centre instead.
            window = cfg.settle_cycles / f_mod
            if window < 3.0 * self._loop_time_constant():
                seed_voltage = None
        stage_log: List[Tuple[TestStage, float]] = []
        wall_start = perf_counter()

        # ---- stage 0: apply modulation with the loop locked -----------
        # The peak detector is attached *after* the settle (its latch
        # re-aligns on the first observed PFD cycle, well before the arm
        # instant), so warm-restored and cold-settled runs see identical
        # observer history from the settle end onwards.
        source = self.stimulus.make_source(f_mod, start_time=0.0)
        sim = PLLTransientSimulator(
            self.pll,
            source,
            record=self.record_level,
            initial_control_voltage=seed_voltage,
        )
        stage_log.append((TestStage.REF_SET, 0.0))
        settle_end = cfg.settle_cycles / f_mod
        arm_index = cfg.settle_cycles
        warm = False
        cacheable = (
            cache is not None
            and settle == "fixed"
            and seed_voltage is None
            and 8.0 * f_mod <= self.pll.f_ref
            # Sources outside repro.stimulus may not support snapshots;
            # they simply run cold rather than fail the tone.
            and hasattr(source, "snapshot_state")
            and hasattr(source, "restore_state")
        )
        if cacheable:
            key = self._settle_cache_key(f_mod)
            snap = cache.get(key)
            if snap is not None:
                sim.restore(snap)
                warm = True
        if not warm:
            if settle == "adaptive":
                arm_index = self._adaptive_settle(sim, f_mod)
            else:
                sim.run_until(settle_end)
            if cacheable:
                cache.put(key, sim.snapshot())
        wall_settled = perf_counter()

        detector = PeakFrequencyDetector(
            inverter_delay=cfg.detector_inverter_delay,
            and_gate_delay=cfg.detector_and_delay,
        )
        sim.add_cycle_observer(detector.on_cycle)

        # ---- stages 1-4: the shared boundary-driven script -------------
        # The same MeasurementScript drives the vectorized farm's
        # batched measurement phase; here its targets feed the scalar
        # event loop directly.
        script = MeasurementScript(
            self.pll,
            self.stimulus,
            cfg,
            f_mod,
            arm_index,
            max_wait_cycles=max_wait_cycles,
        )
        script.stage_log = stage_log  # REF_SET@0.0 already logged above

        def on_peak(event: PeakEvent) -> None:
            if script.capture_event(event):
                sim.open_loop()  # the mux flips within the same PFD cycle

        detector.on_event = on_peak
        wall_monitored = wall_settled
        while True:
            target = script.next_target()
            if target is None:
                break
            if target > sim.now:
                sim.run_until(target)
            monitoring = script.monitoring
            script.advance(sim.now, sim)
            if monitoring and not script.monitoring:
                wall_monitored = perf_counter()
        assert script.held is not None and script.phase_count is not None
        self.last_release_voltage = sim.control_voltage
        wall_end = perf_counter()

        return ToneMeasurement(
            f_mod=f_mod,
            modulation_period=t_mod,
            held=script.held,
            phase_count=script.phase_count,
            f_out_nominal=self.pll.f_out_nominal,
            arm_time=script.t_arm,
            peak_event=script.event,
            stage_log=script.stage_log,
            timing=ToneTiming(
                settle_s=wall_settled - wall_start,
                monitor_s=wall_monitored - wall_settled,
                measure_s=wall_end - wall_monitored,
                warm=warm,
            ),
        )

    def measure_nominal_frequency(self, gate_cycles: int = 128) -> float:
        """Stage-0 companion: count the unmodulated output frequency.

        Runs the loop closed with a constant reference and reciprocal-
        counts the divided output, giving the ``f_out`` baseline that
        ``ΔF`` measurements subtract (the paper references deviations to
        the locked nominal frequency).

        The baseline depends only on the device *physics* (not its
        name), the stimulus's nominal frequency, the test clock and
        ``gate_cycles``, so it is memoised process-wide on exactly that
        key — every sequencer measuring a behaviourally identical die
        (each renamed die of a lot, each repeat of a library fault)
        shares one settled baseline instead of re-simulating a
        throwaway lock per device.
        """
        key = (
            self.pll.physics_signature(),
            float(self.stimulus.f_nominal),
            float(self.config.test_clock_hz),
            self.record_level.value,
            int(gate_cycles),
        )
        global _NOMINAL_FREQUENCY_MEMO_HITS, _NOMINAL_FREQUENCY_MEMO_MISSES
        global _NOMINAL_FREQUENCY_MEMO_EVICTIONS
        cached = _NOMINAL_FREQUENCY_MEMO.get(key)
        if cached is not None:
            _NOMINAL_FREQUENCY_MEMO_HITS += 1
            _NOMINAL_FREQUENCY_MEMO.move_to_end(key)
            return cached
        _NOMINAL_FREQUENCY_MEMO_MISSES += 1

        from repro.stimulus.waveforms import ConstantFrequencySource

        source = ConstantFrequencySource(self.stimulus.f_nominal)
        sim = PLLTransientSimulator(self.pll, source, record=self.record_level)
        counter = FrequencyCounter(self.config.test_clock_hz)
        settle = 64.0 / self.stimulus.f_nominal
        sim.run_until(settle)
        t0 = sim.now
        f_fb = self.pll.f_out_nominal / self.pll.n
        sim.run_for((gate_cycles + 2) / f_fb)
        value = counter.measure_reciprocal(
            sim.fb_edges, start=t0, periods=gate_cycles
        ).scaled(self.pll.n).frequency_hz
        while len(_NOMINAL_FREQUENCY_MEMO) >= _NOMINAL_FREQUENCY_MEMO_MAX:
            _NOMINAL_FREQUENCY_MEMO.popitem(last=False)
            _NOMINAL_FREQUENCY_MEMO_EVICTIONS += 1
        _NOMINAL_FREQUENCY_MEMO[key] = value
        return value
