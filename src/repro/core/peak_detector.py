"""The modified-PFD peak frequency detector (Figures 7 and 8).

This is the paper's novel circuit.  A (duplicated) PFD monitors the
reference and feedback signals; a D-latch samples a *delayed and
inverted* copy of ``PFDDN``, clocked by the PFD's AND-gate (reset)
pulse.  The outcome per compare cycle:

* reference **leading** (UP wide, DOWN a dead-zone glitch): at the
  sampling instant the inverter, whose delay exceeds the glitch width,
  is still outputting the *pre-glitch* DOWN level — low — so the latch
  captures **1**;
* reference **lagging** (DOWN wide): the inverter input has been high
  for longer than its delay, so the latch captures **0**.

The latch output Q therefore tracks which input leads, and a **falling
edge of Q** marks the reversal from "reference leading" (VCO being
pulled up) to "reference lagging" (VCO being pulled down) — the instant
the VCO control voltage, and hence the output frequency, is at its
**maximum** (MFREQ in Figure 7).  A rising edge symmetrically marks the
minimum.

The model is cycle-accurate at the gate level: it uses real pulse
timings (rise times + reset time) from
:class:`~repro.pll.pfd.PFDCycle`, honours the inverter/AND delays, and
therefore reproduces the design constraint the paper discusses — if the
inverter delay is *not* longer than the dead-zone glitch, sampling is
corrupted (and the fix of widening the glitches can be modelled by
raising the PFD reset delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.pll.pfd import PFDCycle

__all__ = ["PeakEvent", "PeakFrequencyDetector"]


@dataclass(frozen=True)
class PeakEvent:
    """One detector output pulse."""

    time: float
    is_maximum: bool  # True = MFREQ (output frequency maximum)

    @property
    def kind(self) -> str:
        """``"max"`` or ``"min"``."""
        return "max" if self.is_maximum else "min"


class PeakFrequencyDetector:
    """Gate-level behavioral model of the Figure 7 sampling circuit.

    Feed completed PFD cycles (e.g. by registering :meth:`on_cycle` as a
    simulator cycle observer); collect :class:`PeakEvent` records and/or
    receive them through a callback the instant they occur.

    Parameters
    ----------
    inverter_delay:
        Delay of the inverting buffer on the D input, seconds.  Must
        exceed ``and_gate_delay`` plus the dead-zone glitch width for
        correct sampling (checked behaviourally, not by construction —
        that is the point of modelling it).
    and_gate_delay:
        Delay from the second pulse rising to the latch clock edge.
    on_event:
        Optional callback invoked synchronously with each
        :class:`PeakEvent` — this is how the BIST sequencer reacts
        within the same PFD cycle (hardware would hard-wire MFREQ to the
        hold mux).
    """

    def __init__(
        self,
        inverter_delay: float = 30e-9,
        and_gate_delay: float = 5e-9,
        on_event: Optional[Callable[[PeakEvent], None]] = None,
    ) -> None:
        if inverter_delay <= 0.0:
            raise ConfigurationError(
                f"inverter_delay must be positive, got {inverter_delay!r}"
            )
        if and_gate_delay < 0.0:
            raise ConfigurationError(
                f"and_gate_delay must be >= 0, got {and_gate_delay!r}"
            )
        self.inverter_delay = inverter_delay
        self.and_gate_delay = and_gate_delay
        self.on_event = on_event
        self._q: Optional[bool] = None  # latch output; None = never clocked
        self.events: List[PeakEvent] = []
        self.cycles_seen = 0

    @property
    def q(self) -> Optional[bool]:
        """Latch output: True = reference leading (last sample)."""
        return self._q

    def reset(self) -> None:
        """Clear latch state and the event log."""
        self._q = None
        self.events.clear()
        self.cycles_seen = 0

    # ------------------------------------------------------------------
    # the sampling circuit
    # ------------------------------------------------------------------
    def sample(self, cycle: PFDCycle) -> bool:
        """What the D-latch captures for one PFD cycle.

        The latch clocks at ``t_both + and_gate_delay`` (``t_both`` being
        the moment the second input rises, which starts the AND pulse).
        Its D input is ``NOT PFDDN(t_clk - inverter_delay)``.
        """
        t_both = max(cycle.up_rise, cycle.dn_rise)
        t_clk = t_both + self.and_gate_delay
        t_look = t_clk - self.inverter_delay
        # PFDDN is high on [dn_rise, reset_time); the look-back time is
        # always before reset_time because inverter_delay > and_gate_delay
        # in a sane design, but the general comparison keeps faulty
        # configurations honest.
        dn_high_at_look = cycle.dn_rise <= t_look < cycle.reset_time
        return not dn_high_at_look

    def on_cycle(self, cycle: PFDCycle) -> Optional[PeakEvent]:
        """Process one completed PFD cycle; return the event, if any."""
        self.cycles_seen += 1
        d = self.sample(cycle)
        previous = self._q
        self._q = d
        if previous is None or previous == d:
            return None
        t_event = max(cycle.up_rise, cycle.dn_rise) + self.and_gate_delay
        event = PeakEvent(time=t_event, is_maximum=previous and not d)
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def maxima(self) -> List[PeakEvent]:
        """All MFREQ (maximum-frequency) events so far."""
        return [e for e in self.events if e.is_maximum]

    def minima(self) -> List[PeakEvent]:
        """All minimum-frequency events so far."""
        return [e for e in self.events if not e.is_maximum]

    def first_maximum_after(self, time: float) -> Optional[PeakEvent]:
        """Earliest MFREQ event strictly after ``time``."""
        for event in self.events:
            if event.is_maximum and event.time > time:
                return event
        return None

    def __repr__(self) -> str:
        return (
            f"PeakFrequencyDetector(cycles={self.cycles_seen}, "
            f"events={len(self.events)}, q={self._q!r})"
        )
