"""The three stimulus classes compared in Figures 11–12.

Each stimulus wraps "how do I modulate the reference at modulation
frequency ``f_mod``" into a factory of edge sources, plus the metadata
the BIST sequencer needs (where the input-modulation peak lies — that is
where Table 2 stage (1) starts the phase counter — and the nominal peak
deviation used by eq. 7's linearity argument).

* :class:`SineFMStimulus` — pure sinusoidal FM, the bench ideal.
* :class:`MultiToneFSKStimulus` — the paper's on-chip method: ``steps``
  DCO tones per modulation cycle (ten in the paper's experiment).
* :class:`TwoToneFSKStimulus` — the degenerate two-tone hop, shown in
  the paper to deviate visibly from the sine-FM response.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import StimulusError
from repro.stimulus.dco import DCO, DCOProgrammedSource
from repro.stimulus.waveforms import (
    PiecewiseConstantFrequencySource,
    SinusoidalFMSource,
)

__all__ = [
    "ModulatedStimulus",
    "SineFMStimulus",
    "MultiToneFSKStimulus",
    "TwoToneFSKStimulus",
]


class ModulatedStimulus:
    """Base class: a parameterised family of modulated references.

    Parameters
    ----------
    f_nominal:
        Unmodulated reference frequency at the PFD, Hz.
    deviation:
        Peak frequency deviation, Hz.  Must keep the loop inside its
        linear range (Section 4's only requirement on amplitude).
    """

    label = "modulated"

    def __init__(self, f_nominal: float, deviation: float) -> None:
        if f_nominal <= 0.0:
            raise StimulusError(f"f_nominal must be positive, got {f_nominal!r}")
        if not (0.0 < deviation < f_nominal):
            raise StimulusError(
                f"deviation must be in (0, f_nominal), got {deviation!r}"
            )
        self.f_nominal = f_nominal
        self.deviation = deviation

    def make_source(self, f_mod: float, start_time: float = 0.0):
        """Edge source modulated at ``f_mod`` Hz, beginning at
        ``start_time``."""
        raise NotImplementedError

    def cache_key(self) -> Tuple:
        """Hashable fingerprint of everything that shapes the edge train.

        Two stimuli with equal keys produce bit-identical sources from
        :meth:`make_source` for every ``(f_mod, start_time)``; the
        warm-start machinery uses this to key cached settled states.
        Subclasses with extra shape parameters must extend the tuple.
        """
        return (type(self).__name__, self.f_nominal, self.deviation)

    def modulation_peak_time(self, f_mod: float, start_time: float = 0.0,
                             index: int = 0) -> float:
        """Absolute time of the ``index``-th input-frequency maximum.

        The underlying (or approximated) sine is
        ``deviation · sin(2π f_mod (t - start_time))``, peaking at
        quarter-period offsets.
        """
        return start_time + (0.25 + index) / f_mod

    def ideal_frequency(self, f_mod: float, t: float,
                        start_time: float = 0.0) -> float:
        """The sine the stimulus approximates, for comparison plots."""
        return self.f_nominal + self.deviation * math.sin(
            2.0 * math.pi * f_mod * (t - start_time)
        )


class SineFMStimulus(ModulatedStimulus):
    """Pure sinusoidal FM (bench equipment; the paper's reference curve)."""

    label = "Pure Sine FM"

    def make_source(self, f_mod: float, start_time: float = 0.0
                    ) -> SinusoidalFMSource:
        return SinusoidalFMSource(
            f_nominal=self.f_nominal,
            deviation=self.deviation,
            f_mod=f_mod,
            start_time=start_time,
        )


class MultiToneFSKStimulus(ModulatedStimulus):
    """Stepped (multi-tone FSK) approximation of sinusoidal FM.

    Parameters
    ----------
    steps:
        Tones per modulation cycle (the paper uses ten).
    dco:
        Optional :class:`~repro.stimulus.dco.DCO`.  When given, tones
        snap to the achievable grid and — with ``hardware_edges`` — the
        edges come from the real ring-counter model.  When omitted, the
        tones are ideal (infinite resolution).
    hardware_edges:
        Use :class:`~repro.stimulus.dco.DCOProgrammedSource` (modulus
        hops at output edges) instead of the idealised
        piecewise-constant source.  Requires ``dco``.
    """

    label = "Multi Tone FSK"

    def __init__(
        self,
        f_nominal: float,
        deviation: float,
        steps: int = 10,
        dco: Optional[DCO] = None,
        hardware_edges: bool = False,
    ) -> None:
        super().__init__(f_nominal, deviation)
        if steps < 2:
            raise StimulusError(f"steps must be >= 2, got {steps!r}")
        if hardware_edges and dco is None:
            raise StimulusError("hardware_edges requires a DCO")
        self.steps = steps
        self.dco = dco
        self.hardware_edges = hardware_edges
        if steps != 2:
            self.label = f"Multi Tone FSK ({steps} steps)"
        if dco is not None:
            # Fail early if the grid cannot express the deviation.
            dco.tone_set(f_nominal, deviation, steps)

    def cache_key(self) -> Tuple:
        """Base fingerprint plus the FSK shape parameters."""
        dco_key = (
            None
            if self.dco is None
            else (self.dco.f_master, self.dco.max_modulus)
        )
        return super().cache_key() + (self.steps, self.hardware_edges, dco_key)

    def tone_frequencies(self) -> List[float]:
        """The per-dwell tones over one modulation cycle."""
        if self.dco is not None:
            return self.dco.tone_set(self.f_nominal, self.deviation, self.steps)
        return [
            self.f_nominal
            + self.deviation * math.sin(2.0 * math.pi * (i + 0.5) / self.steps)
            for i in range(self.steps)
        ]

    def schedule(self, f_mod: float) -> List[Tuple[float, float]]:
        """Repeating ``(frequency, dwell)`` schedule for one cycle."""
        if f_mod <= 0.0:
            raise StimulusError(f"f_mod must be positive, got {f_mod!r}")
        dwell = 1.0 / (f_mod * self.steps)
        return [(f, dwell) for f in self.tone_frequencies()]

    def make_source(self, f_mod: float, start_time: float = 0.0):
        if self.hardware_edges:
            assert self.dco is not None
            dwell = 1.0 / (f_mod * self.steps)
            moduli = [
                (self.dco.modulus_for(f), dwell)
                for f in self.tone_frequencies()
            ]
            return DCOProgrammedSource(self.dco, moduli, start_time)
        return PiecewiseConstantFrequencySource(
            self.schedule(f_mod), start_time
        )


class TwoToneFSKStimulus(MultiToneFSKStimulus):
    """Two-tone FSK: the reference hops between ``f ± deviation``.

    The crudest discrete FM — Figures 11–12 include it to show how much
    stimulus quality matters.  Implemented as the two-step case of the
    multi-tone generator (dwell midpoints sample the sine at ±90°, i.e.
    exactly ``±deviation``).
    """

    label = "Two Tone FSK"

    def __init__(
        self,
        f_nominal: float,
        deviation: float,
        dco: Optional[DCO] = None,
        hardware_edges: bool = False,
    ) -> None:
        super().__init__(
            f_nominal, deviation, steps=2, dco=dco, hardware_edges=hardware_edges
        )
        self.label = "Two Tone FSK"
