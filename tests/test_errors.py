"""Exception hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_configuration_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_stimulus_is_value_error(self):
        assert issubclass(errors.StimulusError, ValueError)

    def test_simulation_is_runtime_error(self):
        assert issubclass(errors.SimulationError, RuntimeError)

    def test_convergence_is_simulation_error(self):
        assert issubclass(errors.ConvergenceError, errors.SimulationError)

    def test_lock_is_simulation_error(self):
        assert issubclass(errors.LockError, errors.SimulationError)

    def test_catchable_as_library_failure(self):
        with pytest.raises(errors.ReproError):
            raise errors.MeasurementError("x")

    def test_fault_injection_error(self):
        assert issubclass(errors.FaultInjectionError, ValueError)
