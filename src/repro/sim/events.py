"""Event primitives for the discrete-event kernel.

The digital side of the test architecture (counters, latches, the test
sequencer) reacts to *edges* — timed logic transitions on named nets.
:class:`Edge` is the record type used throughout; :class:`Event` is the
scheduler's internal unit of work (an edge plus a callback).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["EdgeKind", "Edge", "Event"]


class EdgeKind(enum.Enum):
    """Direction of a logic transition."""

    RISING = "rising"
    FALLING = "falling"

    @property
    def new_level(self) -> int:
        """Logic level after the transition (1 for rising, 0 for falling)."""
        return 1 if self is EdgeKind.RISING else 0

    def opposite(self) -> "EdgeKind":
        """The other edge direction."""
        return EdgeKind.FALLING if self is EdgeKind.RISING else EdgeKind.RISING


@dataclass(frozen=True, order=True)
class Edge:
    """A timed logic transition on a named net.

    Ordering is by time first, then net name, then kind — deterministic
    so that simulations are exactly reproducible run to run.
    """

    time: float
    net: str = ""
    kind: EdgeKind = field(default=EdgeKind.RISING, compare=False)

    @property
    def is_rising(self) -> bool:
        """Whether this edge is a 0 -> 1 transition."""
        return self.kind is EdgeKind.RISING

    @property
    def is_falling(self) -> bool:
        """Whether this edge is a 1 -> 0 transition."""
        return self.kind is EdgeKind.FALLING

    def delayed(self, delay: float) -> "Edge":
        """A copy of this edge shifted later in time by ``delay`` seconds."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return Edge(self.time + delay, self.net, self.kind)

    def inverted(self) -> "Edge":
        """A copy with the opposite transition direction (logic inverter)."""
        return Edge(self.time, self.net, self.kind.opposite())


_event_counter = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``sequence`` breaks ties between events scheduled for the same
    instant in insertion order, which keeps cause-before-effect ordering
    for zero-delay logic chains.
    """

    time: float
    sequence: int = field(default_factory=lambda: next(_event_counter))
    callback: Optional[Callable[[float], Any]] = field(default=None, compare=False)
    label: str = field(default="", compare=False)

    def fire(self) -> Any:
        """Invoke the callback with the event time."""
        if self.callback is None:
            return None
        return self.callback(self.time)
