"""Regression tests for defects found (and fixed) during development.

Each test pins a concrete failure mode so it cannot silently return:

1. the 4046 cubic tuning law used to bend back *outside* the rails,
   breaking the monotone-bisection lock-point solve (the loop "locked"
   at -7.5 V);
2. ``voltage_for_frequency`` used to trust its bisection blindly;
3. ``open_loop()`` mid-pulse used to strand the pump ON for a full
   reference period (the terminating feedback edge no longer reached
   the PFD);
4. the exact-lock boundary: the feedback phase crossing lands within
   solver tolerance of the reference edge every single cycle;
5. instantaneous frequency reads taken exactly on reference edges catch
   the feed-through step of the just-started pulse.
"""

import pytest

from repro.errors import ConfigurationError
from repro.pll.hct4046 import HCT4046Config, make_hct4046_pll
from repro.pll.simulator import PLLTransientSimulator
from repro.pll.vco import VCO
from repro.presets import paper_pll
from repro.stimulus.waveforms import ConstantFrequencySource


class TestTuningCurveDomainClamp:
    """Regression 1: the cubic law must be monotone for ALL voltages."""

    def test_curve_monotone_beyond_rails(self):
        cfg = HCT4046Config(curvature=0.3)
        vs = [-10.0 + 0.25 * i for i in range(101)]  # -10 .. +15 V
        fs = [cfg.tuning_curve(v) for v in vs]
        assert all(b >= a for a, b in zip(fs, fs[1:]))

    def test_locked_voltage_sane_at_high_curvature(self):
        cfg = HCT4046Config(f_center=5000.0, gain_hz_per_v=1200.0,
                            curvature=0.3)
        pll = make_hct4046_pll(cfg, r1=390e3, r2=33e3, c=470e-9, n=5,
                               f_ref=1000.0)
        v = pll.locked_control_voltage()
        assert 0.0 <= v <= 5.0
        assert v == pytest.approx(2.5, abs=1e-6)

    def test_high_curvature_loop_locks(self):
        cfg = HCT4046Config(f_center=5000.0, gain_hz_per_v=1200.0,
                            curvature=0.3)
        pll = make_hct4046_pll(cfg, r1=390e3, r2=33e3, c=470e-9, n=5,
                               f_ref=1000.0)
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.5)
        assert sim.output_frequency_smoothed == pytest.approx(
            5000.0, rel=1e-6
        )
        # The capacitor stays physical.
        assert 0.0 <= sim.cap_trace.values.min()
        assert sim.cap_trace.values.max() <= 5.0


class TestInverseVerification:
    """Regression 2: a silently mis-converged inverse must raise."""

    def test_non_monotone_curve_detected(self):
        bad = lambda v: 5000.0 - 500.0 * (v - 2.5) ** 3 + 800.0 * (v - 2.5)
        vco = VCO(5000.0, 800.0, 2.5, f_min=1000.0, f_max=9000.0,
                  tuning_curve=bad)
        with pytest.raises(ConfigurationError):
            vco.voltage_for_frequency(8000.0)


class TestOpenLoopMidPulse:
    """Regression 3: engaging the hold mid-pulse must not strand drive."""

    @pytest.mark.parametrize("offset_in_period", [0.0, 0.3, 0.7])
    def test_hold_freezes_from_any_phase(self, offset_in_period):
        pll = paper_pll()
        sim = PLLTransientSimulator(
            pll, ConstantFrequencySource(1000.0),
            # Slightly detuned so real-width pulses exist.
            initial_control_voltage=2.52,
        )
        sim.run_until(0.010 + offset_in_period * 1e-3)
        f_hold = sim.output_frequency_smoothed
        sim.open_loop()
        sim.run_for(0.5)
        assert sim.output_frequency_smoothed == pytest.approx(
            f_hold, abs=1e-6
        )


class TestExactLockBoundary:
    """Regression 4: bit-exact lock must not corrupt divider bookkeeping."""

    def test_long_locked_run(self):
        sim = PLLTransientSimulator(
            paper_pll(), ConstantFrequencySource(1000.0)
        )
        sim.run_until(3.0)  # 3000 coincident-edge cycles
        assert len(sim.ref_edges) == 3000
        # The feedback edge coincident with the very last instant may
        # still be pending when the run stops exactly there.
        assert len(sim.fb_edges) in (2999, 3000)
        # And every processed pair is exactly coincident.
        import numpy as np

        n = len(sim.fb_edges)
        skew = np.abs(
            sim.ref_edges.as_array()[:n] - sim.fb_edges.as_array()
        )
        assert skew.max() < 1e-12


class TestFeedthroughSampling:
    """Regression 5: the two frequency views must differ only by the
    in-flight pulse feed-through."""

    def test_smoothed_view_is_pulse_free(self):
        pll = paper_pll()
        sim = PLLTransientSimulator(
            pll, ConstantFrequencySource(1000.0),
            initial_control_voltage=2.52,
        )
        # Land exactly on a reference edge (the failure alignment).
        sim.run_until(0.020)
        assert sim.output_frequency_smoothed == pytest.approx(
            pll.vco.frequency_of_voltage(sim.cap_trace.values[-1])
        )
        # The instantaneous view may legitimately differ (pulse active),
        # but never by more than the full feed-through step.
        k = pll.loop_filter.r2 / (pll.loop_filter.r1 + pll.loop_filter.r2)
        max_step_hz = pll.vco.gain_hz_per_v * k * pll.pump.vdd
        assert abs(
            sim.output_frequency - sim.output_frequency_smoothed
        ) <= max_step_hz
