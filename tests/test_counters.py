"""Frequency and phase counters with honest quantisation."""

import pytest

from repro.core.counters import FrequencyCounter, PhaseCounter
from repro.errors import ConfigurationError, MeasurementError
from repro.sim.signals import PulseTrain


def train_at(freq, n, start=0.0):
    t = PulseTrain("x")
    for k in range(n):
        t.record(start + (k + 1) / freq)
    return t


class TestFrequencyCounterGated:
    def test_exact_frequency(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = train_at(1000.0, 3000)
        m = fc.measure_gated(edges, start=0.5, gate_seconds=1.0)
        assert m.mode == "gated"
        assert m.frequency_hz == pytest.approx(1000.0, abs=m.resolution_hz)

    def test_resolution_is_reciprocal_gate(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = train_at(1000.0, 1000)
        m = fc.measure_gated(edges, start=0.0, gate_seconds=0.25)
        assert m.resolution_hz == pytest.approx(4.0)

    def test_count_is_integer_quantised(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = train_at(1000.5, 2000)
        m = fc.measure_gated(edges, start=0.1, gate_seconds=1.0)
        assert isinstance(m.count, int)
        assert abs(m.frequency_hz - 1000.5) <= 1.0

    def test_gate_quantised_to_test_clock(self):
        fc = FrequencyCounter(test_clock_hz=1000.0)
        edges = train_at(100.0, 200)
        m = fc.measure_gated(edges, start=0.0, gate_seconds=0.1004)
        assert m.gate_seconds == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrequencyCounter(0.0)
        fc = FrequencyCounter(1e6)
        with pytest.raises(ConfigurationError):
            fc.measure_gated(train_at(100.0, 10), 0.0, 0.0)


class TestFrequencyCounterReciprocal:
    def test_precision_beats_gated(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        f_true = 1000.37
        edges = train_at(f_true, 200)
        m = fc.measure_reciprocal(edges, start=0.0, periods=64)
        assert m.mode == "reciprocal"
        assert m.frequency_hz == pytest.approx(f_true, abs=0.01)
        assert m.resolution_hz < 0.01

    def test_scaled_through_divider(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = train_at(1000.0, 100)
        m = fc.measure_reciprocal(edges, start=0.0, periods=32).scaled(5.0)
        assert m.frequency_hz == pytest.approx(5000.0, abs=0.05)
        assert m.resolution_hz == pytest.approx(
            5.0 * (1000.0 ** 2) / (32 * 10e6), rel=0.01
        )

    def test_runs_out_of_edges(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = train_at(1000.0, 10)
        with pytest.raises(MeasurementError):
            fc.measure_reciprocal(edges, start=0.0, periods=64)

    def test_no_edges_after_start(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        edges = train_at(1000.0, 10)
        with pytest.raises(MeasurementError):
            fc.measure_reciprocal(edges, start=1.0, periods=2)

    def test_slow_clock_cannot_resolve(self):
        fc = FrequencyCounter(test_clock_hz=10.0)
        edges = train_at(1e6, 10)
        with pytest.raises(MeasurementError):
            fc.measure_reciprocal(edges, start=0.0, periods=1)

    def test_periods_validated(self):
        fc = FrequencyCounter(test_clock_hz=10e6)
        with pytest.raises(ConfigurationError):
            fc.measure_reciprocal(train_at(1000.0, 10), 0.0, periods=0)


class TestPhaseCounter:
    def test_basic_count(self):
        pc = PhaseCounter(test_clock_hz=1e6)
        pc.start(1.0)
        count = pc.stop(1.0125)
        # +/-1 count: floating-point interval vs integer clock edges.
        assert count.pulses in (12499, 12500)
        assert count.elapsed_seconds == pytest.approx(0.0125, abs=2e-6)

    def test_eq8_phase_delay(self):
        """Eq. (8): 360 * T * N / Tmod."""
        pc = PhaseCounter(test_clock_hz=1e6)
        pc.start(0.0)
        count = pc.stop(0.0125)  # 1/8 of a 0.1 s modulation period
        assert count.phase_delay_deg(0.1) == pytest.approx(45.0, abs=0.01)

    def test_quantisation_floors(self):
        pc = PhaseCounter(test_clock_hz=10.0)
        pc.start(0.0)
        count = pc.stop(0.19)
        assert count.pulses == 1  # 1.9 ticks floors to 1

    def test_double_start_rejected(self):
        pc = PhaseCounter(1e6)
        pc.start(0.0)
        with pytest.raises(MeasurementError):
            pc.start(1.0)

    def test_stop_without_start_rejected(self):
        with pytest.raises(MeasurementError):
            PhaseCounter(1e6).stop(1.0)

    def test_stop_before_start_rejected(self):
        pc = PhaseCounter(1e6)
        pc.start(1.0)
        with pytest.raises(MeasurementError):
            pc.stop(0.5)

    def test_abort_allows_restart(self):
        pc = PhaseCounter(1e6)
        pc.start(0.0)
        pc.abort()
        assert not pc.running
        pc.start(1.0)
        assert pc.running

    def test_restart_after_stop(self):
        pc = PhaseCounter(1e6)
        pc.start(0.0)
        pc.stop(1.0)
        pc.start(2.0)
        assert pc.stop(3.0).pulses == 1_000_000

    def test_bad_modulation_period(self):
        pc = PhaseCounter(1e6)
        pc.start(0.0)
        count = pc.stop(0.5)
        with pytest.raises(ConfigurationError):
            count.phase_delay_deg(0.0)
