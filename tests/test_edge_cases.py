"""Miscellaneous edge-case coverage across modules."""

import numpy as np
import pytest

from repro.analysis.fitting import EstimatedParameters
from repro.core.counters import FrequencyCounter
from repro.core.monitor import SweepPlan, SweepResult, TransferFunctionMonitor
from repro.errors import ConfigurationError, MeasurementError
from repro.pll import CurrentChargePump, SeriesRCFilter
from repro.pll.simulator import PLLTransientSimulator
from repro.presets import paper_pll
from repro.reporting import device_report
from repro.stimulus import SineFMStimulus
from repro.stimulus.waveforms import ConstantFrequencySource


class TestMonitorEdgeCases:
    def test_zero_correction_requires_known_tau(self, fast_bist_config):
        """A filter without a published zero must be declined, not
        silently uncorrected."""

        class OpaqueFilter(SeriesRCFilter):
            pass

        del OpaqueFilter  # the real check: monitor reads tau2 or tau
        from dataclasses import replace

        pll = replace(
            paper_pll(),
            pump=CurrentChargePump(i_up=1e-4),
            loop_filter=SeriesRCFilter(r=10e3, c=1e-6),
        )
        # Series-RC has `tau`: the monitor accepts it.
        monitor = TransferFunctionMonitor(
            pll, SineFMStimulus(1000.0, 1.0), fast_bist_config
        )
        assert monitor._zero_tau() == pytest.approx(10e3 * 1e-6)

    def test_disabled_correction_returns_none(self, fast_bist_config):
        monitor = TransferFunctionMonitor(
            paper_pll(), SineFMStimulus(1000.0, 1.0), fast_bist_config,
            correct_filter_zero=False,
        )
        assert monitor._zero_tau() is None

    def test_summary_lists_failed_tones(self, sine_sweep_result):
        import copy

        broken = copy.copy(sine_sweep_result)
        broken.failed_tones = {42.0: "it died"}
        text = broken.summary()
        assert "42" in text and "it died" in text
        assert not broken.complete


class TestEstimatedParametersEdge:
    def test_str_with_missing_optionals(self):
        est = EstimatedParameters(
            fn_hz=8.0, zeta=0.4, f_peak_hz=7.0, peak_db=4.0,
            f3db_hz=None, phase_at_peak_deg=None,
        )
        text = str(est)
        assert "n/a" in text

    def test_report_without_estimate(self, sine_sweep_result):
        import copy

        broken = copy.copy(sine_sweep_result)
        broken.estimated = None
        text = device_report(paper_pll(), broken)
        assert "not extractable" in text


class TestSimulatorEdgeCases:
    def test_bad_sample_interval(self):
        with pytest.raises(ConfigurationError):
            PLLTransientSimulator(
                paper_pll(), ConstantFrequencySource(1000.0),
                sample_interval=0.0,
            )

    def test_record_pfd_false_disables_streams(self):
        sim = PLLTransientSimulator(
            paper_pll(), ConstantFrequencySource(1000.0), record_pfd=False
        )
        sim.run_until(0.01)
        assert sim.result().pfd.up_stream is None

    def test_repr(self):
        sim = PLLTransientSimulator(
            paper_pll(), ConstantFrequencySource(1000.0)
        )
        assert "PLLTransientSimulator" in repr(sim)

    def test_start_time_offset(self):
        sim = PLLTransientSimulator(
            paper_pll(), ConstantFrequencySource(1000.0, start_time=1.0),
            start_time=1.0,
        )
        sim.run_until(1.05)
        assert sim.ref_edges.times[0] == pytest.approx(1.001)


class TestCounterEdgeCases:
    def test_gate_snaps_to_clock(self):
        fc = FrequencyCounter(test_clock_hz=100.0)
        from repro.sim.signals import PulseTrain

        edges = PulseTrain("x")
        for k in range(50):
            edges.record((k + 1) * 0.1)
        m = fc.measure_gated(edges, start=0.003, gate_seconds=1.0)
        # Gate opening snapped up to the next 10 ms tick.
        assert (m.gate_seconds * 100.0) == pytest.approx(
            round(m.gate_seconds * 100.0)
        )


class TestSweepPlanEdgeCases:
    def test_frequencies_immutable(self):
        plan = SweepPlan((1.0, 2.0))
        with pytest.raises(AttributeError):
            plan.frequencies_hz = (3.0, 4.0)

    def test_around_points_validated(self):
        with pytest.raises(Exception):
            SweepPlan.around(8.0, points=1)


class TestReprs:
    def test_component_reprs_roundtrip_information(self):
        pll = paper_pll()
        assert "390000" in repr(pll.loop_filter) or "390e3" in repr(
            pll.loop_filter
        ).replace("+", "")
        assert "vdd=5.0" in repr(pll.pump)
        assert "f_center=5000.0" in repr(pll.vco)
        assert "n=5" in repr(pll)
