"""Digital counters of the Figure 6 test architecture.

Two measurement counters close the loop from edges to numbers:

* :class:`FrequencyCounter` — measures the (held) output frequency.
  Supports the classic **gated** mode (count input edges in a fixed
  gate; resolution ``1/T_gate``) and the **reciprocal** mode (time M
  input periods with the test clock; resolution ``~f²·T_clk/M``), which
  is what makes the hold-and-count approach precise: once the VCO is
  frozen the counter can take its time.
* :class:`PhaseCounter` — counts test-clock pulses between the input
  modulation peak and the detected output peak; eq. (8) converts the
  count into degrees of phase lag.

Both quantise honestly: counts are integers of the respective clock, so
the models exhibit the real ±1-count uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, MeasurementError
from repro.sim.signals import PulseTrain

__all__ = [
    "FrequencyCounter",
    "FrequencyMeasurement",
    "PhaseCounter",
    "PhaseCount",
]


@dataclass(frozen=True)
class FrequencyMeasurement:
    """Result of one frequency measurement."""

    frequency_hz: float
    count: int
    gate_seconds: float
    mode: str  # "gated" or "reciprocal"
    resolution_hz: float

    def scaled(self, factor: float) -> "FrequencyMeasurement":
        """Measurement referred through a known division ratio.

        Counting the divided-by-N feedback node and multiplying by N is
        how the architecture reads the VCO frequency without a
        high-speed counter.
        """
        return FrequencyMeasurement(
            frequency_hz=self.frequency_hz * factor,
            count=self.count,
            gate_seconds=self.gate_seconds,
            mode=self.mode,
            resolution_hz=self.resolution_hz * factor,
        )


class FrequencyCounter:
    """Edge counter with gated and reciprocal modes.

    Parameters
    ----------
    test_clock_hz:
        Frequency of the BIST test clock used for gate timing and for
        reciprocal period timing.
    """

    def __init__(self, test_clock_hz: float) -> None:
        if test_clock_hz <= 0.0:
            raise ConfigurationError(
                f"test_clock_hz must be positive, got {test_clock_hz!r}"
            )
        self.test_clock_hz = test_clock_hz

    def _quantise_to_clock(self, t: float) -> float:
        """Snap an instant to the next test-clock tick (synchroniser)."""
        ticks = math.ceil(t * self.test_clock_hz - 1e-9)
        return ticks / self.test_clock_hz

    def measure_gated(
        self, edges: PulseTrain, start: float, gate_seconds: float
    ) -> FrequencyMeasurement:
        """Classic gated count: edges in ``[start, start + gate)``.

        The gate is realised with the test clock, so both its opening
        and width are quantised to clock ticks.
        """
        if gate_seconds <= 0.0:
            raise ConfigurationError(
                f"gate_seconds must be positive, got {gate_seconds!r}"
            )
        t_open = self._quantise_to_clock(start)
        gate_ticks = max(1, round(gate_seconds * self.test_clock_hz))
        gate = gate_ticks / self.test_clock_hz
        count = edges.count_in_gate(t_open, t_open + gate)
        return FrequencyMeasurement(
            frequency_hz=count / gate,
            count=count,
            gate_seconds=gate,
            mode="gated",
            resolution_hz=1.0 / gate,
        )

    def measure_reciprocal(
        self, edges: PulseTrain, start: float, periods: int
    ) -> FrequencyMeasurement:
        """Reciprocal count: test-clock ticks across ``periods`` input
        periods starting at the first edge after ``start``.

        Resolution is one test-clock tick over the whole window —
        ``f² · T_clk / periods`` in frequency terms — far finer than the
        gated mode for low-frequency inputs, which is why the held
        (frozen) output frequency can be measured accurately in a short
        test time.
        """
        if periods < 1:
            raise ConfigurationError(f"periods must be >= 1, got {periods!r}")
        t0 = edges.next_after(start)
        if t0 is None:
            raise MeasurementError(
                f"no edges after t={start!r} on {edges.net!r}"
            )
        t = t0
        for _ in range(periods):
            t_next = edges.next_after(t)
            if t_next is None:
                raise MeasurementError(
                    f"only found {edges.count_in_gate(t0, t)} of {periods} "
                    f"periods after t={start!r} on {edges.net!r}"
                )
            t = t_next
        ticks = round((t - t0) * self.test_clock_hz)
        if ticks <= 0:
            raise MeasurementError(
                "test clock too slow to resolve one input period"
            )
        window = ticks / self.test_clock_hz
        freq = periods / window
        return FrequencyMeasurement(
            frequency_hz=freq,
            count=ticks,
            gate_seconds=window,
            mode="reciprocal",
            resolution_hz=freq * freq / (periods * self.test_clock_hz),
        )


@dataclass(frozen=True)
class PhaseCount:
    """Result of one phase-counter measurement (eq. 8 inputs)."""

    pulses: int
    test_clock_hz: float
    t_start: float
    t_stop: float

    @property
    def elapsed_seconds(self) -> float:
        """Counted duration as the hardware sees it."""
        return self.pulses / self.test_clock_hz

    def phase_delay_deg(self, modulation_period: float) -> float:
        """Eq. (8): ``Δφ = 360 · T · N / Tmod`` in degrees (a lag)."""
        if modulation_period <= 0.0:
            raise ConfigurationError(
                f"modulation_period must be positive, got {modulation_period!r}"
            )
        return 360.0 * self.elapsed_seconds / modulation_period


class PhaseCounter:
    """Counts test-clock pulses between a start and a stop event.

    Table 2: started at the peak of the input modulation (stage 1),
    stopped when the peak detector fires (stage 3).
    """

    def __init__(self, test_clock_hz: float) -> None:
        if test_clock_hz <= 0.0:
            raise ConfigurationError(
                f"test_clock_hz must be positive, got {test_clock_hz!r}"
            )
        self.test_clock_hz = test_clock_hz
        self._t_start: Optional[float] = None

    @property
    def running(self) -> bool:
        """Whether the counter has been started and not yet stopped."""
        return self._t_start is not None

    def start(self, time: float) -> None:
        """Open the counter at ``time``."""
        if self._t_start is not None:
            raise MeasurementError(
                f"phase counter already running since t={self._t_start!r}"
            )
        self._t_start = time

    def stop(self, time: float) -> PhaseCount:
        """Close the counter and return the count."""
        if self._t_start is None:
            raise MeasurementError("phase counter stopped without being started")
        if time < self._t_start:
            raise MeasurementError(
                f"stop time {time!r} precedes start time {self._t_start!r}"
            )
        pulses = int(math.floor((time - self._t_start) * self.test_clock_hz))
        result = PhaseCount(
            pulses=pulses,
            test_clock_hz=self.test_clock_hz,
            t_start=self._t_start,
            t_stop=time,
        )
        self._t_start = None
        return result

    def abort(self) -> None:
        """Discard a running count (sequencer error recovery)."""
        self._t_start = None
