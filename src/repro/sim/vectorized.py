"""Lockstep settle farm: N devices' closed-form event loops as array ops.

The scalar :class:`~repro.pll.simulator.PLLTransientSimulator` advances
one device edge-to-edge with closed-form analogue segments.  Stage 0 of
the Table 2 tone sequence — the fixed settling wait — dominates a cold
sweep's cost and touches no measurement hardware, so its event loop is
a pure function of (device physics, stimulus, tone).  This module runs
*many* such settles in lockstep: every live lane holds its scalar loop
state in NumPy arrays (capacitor voltage, VCO phase accumulator, PFD
flip-flops, pending reset, reference-edge cursor) and each iteration
dispatches exactly one event per lane, with the segment algebra applied
as array arithmetic across lanes.

Bit-identity contract
---------------------
A lane that completes in the farm yields a
:class:`~repro.pll.simulator.SimulatorSnapshot` **bit-identical** to
what the scalar engine produces for the same settle.  That holds
because:

* every floating-point expression replicates the scalar engine's
  operation sequence exactly (same association, same operand order) —
  basic IEEE arithmetic is elementwise-identical between Python floats
  and NumPy float64;
* transcendentals go through scalar :func:`math.exp` /
  :func:`math.expm1` per element (NumPy's differ in the last ulp on a
  few percent of arguments);
* reference edges come from the *real* stimulus source, generated once
  per (stimulus, tone) group and shared by every lane in the group;
* any lane the arrays cannot represent faithfully — VCO clamp
  excursion, tuning-curve nonlinearity, pump turn-on delay, an exotic
  filter, a PFD anomaly — is *ejected*: its array state (a valid
  event-boundary snapshot) is materialised and a scalar simulator
  finishes the settle, so correctness never depends on the fast path.

The farm also drains itself: when fewer than ``drain_width`` lanes
remain live, lockstep NumPy overhead loses to the scalar loop, so the
stragglers are handed off the same way ejected lanes are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.pll.charge_pump import Drive, DriveKind
from repro.pll.loop_filter import PassiveLagLeadFilter, SeriesRCFilter
from repro.pll.pfd import PFDSnapshot, PFDState
from repro.pll.simulator import (
    PLLTransientSimulator,
    RecordLevel,
    SimulatorSnapshot,
)
from repro.pll.vco import VCO
from repro.sim.segments import ExponentialSegment, RampSegment
from repro.stimulus.waveforms import EdgeSourceBase

__all__ = ["SettleLane", "LaneResult", "VectorizedLotSimulator"]


class _Unsupported(Exception):
    """Internal: this lane cannot be represented in the array engine."""


# Segment-law kinds, per (physics, drive) row.
_CONST, _RAMP, _EXP = 0, 1, 2

# Event kinds, per lane per iteration.
_END, _REF, _FB, _RESET = 0, 1, 2, 3


@dataclass(frozen=True)
class SettleLane:
    """One settle job: device × stimulus × tone, up to ``settle_end``."""

    pll: object
    stimulus: object
    f_mod: float
    settle_end: float
    record: RecordLevel = RecordLevel.COUNTERS


@dataclass
class LaneResult:
    """Outcome of one lane.

    ``mode`` is ``"vector"`` (completed in the farm), ``"drained"``
    (lockstep start, scalar finish), ``"ejected"`` (left the supported
    envelope mid-flight, scalar finish) or ``"scalar"`` (never entered
    the farm; full scalar settle).  ``snapshot`` is ``None`` when the
    scalar path raised — the caller should leave that lane cold so the
    orchestrating sweep reproduces the identical error itself.
    """

    snapshot: Optional[SimulatorSnapshot]
    mode: str
    error: Optional[str] = None


@dataclass
class _LawRow:
    """Replicated segment laws for one (filter, drive) pair.

    ``kind`` selects the closed form; the coefficients reproduce the
    filter's ``segment_pair`` output bit-for-bit (verified at build
    time against the real filter at a probe voltage).
    """

    kind: int
    asym: float = 0.0      # state-law asymptote (exp)
    tau: float = 1.0       # state/output time constant (exp)
    slope: float = 0.0     # state/output slope (ramp)
    half_slope: float = 0.0
    o_a: float = 1.0       # output initial = o_a * vc + o_b  (exp)
    o_b: float = 0.0
    o_asym: float = 0.0    # output-law asymptote (exp)
    o_off: float = 0.0     # output initial = vc + o_off      (ramp)


def _build_law(filt, drive: Drive) -> _LawRow:
    """Replicate the loop filter's segment formulas for one drive."""
    if type(filt) is PassiveLagLeadFilter:
        r_total = drive.source_resistance + filt.r1 + filt.r2
        r_out = filt.r2
    elif type(filt) is SeriesRCFilter:
        r_total = drive.source_resistance + filt.r
        r_out = filt.r
    else:
        raise _Unsupported(f"filter {type(filt).__name__}")
    r_l = filt.leak_resistance
    leaky = math.isfinite(r_l)
    if drive.kind is DriveKind.VOLTAGE:
        if r_total <= 0.0:
            raise _Unsupported("voltage drive into zero series resistance")
        if leaky:
            tau = filt.c * r_total * r_l / (r_total + r_l)
            asym = drive.value * r_l / (r_total + r_l)
        else:
            tau = filt.c * r_total
            asym = drive.value
        k = r_out / r_total
        return _LawRow(
            kind=_EXP, asym=asym, tau=tau,
            o_a=1.0 - k, o_b=k * drive.value,
            o_asym=(1.0 - k) * asym + k * drive.value,
        )
    if drive.kind is DriveKind.CURRENT:
        o_off = drive.value * r_out
        if leaky:
            asym = drive.value * r_l
            return _LawRow(
                kind=_EXP, asym=asym, tau=r_l * filt.c,
                o_a=1.0, o_b=o_off, o_asym=asym + o_off,
            )
        slope = drive.value / filt.c
        return _LawRow(
            kind=_RAMP, slope=slope, half_slope=0.5 * slope, o_off=o_off,
        )
    # HIGH_Z
    if leaky:
        return _LawRow(kind=_EXP, asym=0.0, tau=r_l * filt.c,
                       o_a=1.0, o_b=0.0, o_asym=0.0)
    return _LawRow(kind=_CONST)


def _verify_law(filt, drive: Drive, row: _LawRow, probe_vc: float) -> None:
    """Cross-check a replicated law against the real filter.

    Guards the bit-identity contract against future filter changes: a
    mismatch demotes the physics to the scalar path instead of
    producing silently-wrong fast-path results.
    """
    out, state = filt.segment_pair(probe_vc, drive)
    if row.kind == _CONST:
        ok = (type(state).__name__ == "ConstantSegment"
              and state.initial == probe_vc and out is state)
    elif row.kind == _RAMP:
        ok = (isinstance(state, RampSegment)
              and isinstance(out, RampSegment)
              and state.initial == probe_vc
              and state.slope == row.slope
              and out.slope == row.slope
              and out.initial == probe_vc + row.o_off)
    else:
        ok = (isinstance(state, ExponentialSegment)
              and isinstance(out, ExponentialSegment)
              and state.initial == probe_vc
              and state.asymptote == row.asym
              and state.tau == row.tau
              and out.tau == row.tau
              and out.asymptote == row.o_asym
              and out.initial == row.o_a * probe_vc + row.o_b)
    if not ok:
        raise _Unsupported(
            f"filter {type(filt).__name__} law mismatch under "
            f"{drive.kind.name} drive"
        )


class _PhysicsTable:
    """Per-device constants: drives, segment laws, VCO line, divider."""

    def __init__(self, pll, probe_vc: float):
        vco = pll.vco
        pump = pll.pump
        filt = pll.loop_filter
        if type(vco) is not VCO or vco.tuning_curve is not None:
            raise _Unsupported("nonlinear or non-standard VCO")
        if float(getattr(pump, "turn_on_delay", 0.0)) != 0.0:
            raise _Unsupported("charge pump with turn-on delay")
        try:
            self.base_hz = vco._base_hz
            self.v_lo = vco._v_lo
            self.v_hi = vco._v_hi
        except AttributeError:
            raise _Unsupported("VCO without precomputed clamp window")
        self.pll = pll
        self.vco = vco
        self.gain = vco.gain_hz_per_v
        self.f_center = vco.f_center
        self.v_center = vco.v_center
        self.f_min = vco.f_min
        self.f_max = vco.f_max
        self.nf = float(pll.n)
        self.reset_delay = float(pll.pfd_reset_delay)

        self.drives: List[Drive] = []
        self.s_to_drive = [
            self._intern(pump.drive_for_state(PFDState(up=up, dn=dn)))
            for up, dn in ((False, False), (True, False),
                           (False, True), (True, True))
        ]
        self.idle_idx = self._intern(pump.idle_drive())
        self.laws = [_build_law(filt, d) for d in self.drives]
        for drive, row in zip(self.drives, self.laws):
            _verify_law(filt, drive, row, probe_vc)

    def _intern(self, drive: Drive) -> int:
        for i, d in enumerate(self.drives):
            if d is drive:
                return i
        self.drives.append(drive)
        return len(self.drives) - 1


@dataclass
class _EdgeGroup:
    """Shared reference-edge stream for one (stimulus, tone) family."""

    edges: np.ndarray


class VectorizedLotSimulator:
    """Advance N settle lanes in lockstep; see the module docstring.

    Parameters
    ----------
    lanes:
        The settle jobs; lanes with equal (stimulus cache key, tone)
        share one generated reference-edge stream.
    drain_width:
        When at most this many lanes remain live, they are handed off
        to scalar simulators — below roughly ten live lanes the
        fixed per-iteration NumPy overhead loses to the scalar loop,
        and the stragglers (the lowest tone alone runs thousands of
        events) would otherwise pay it the longest.
    """

    def __init__(self, lanes: Sequence[SettleLane], drain_width: int = 8):
        self.lanes = list(lanes)
        self.drain_width = max(0, int(drain_width))
        self.stats = {"vector": 0, "drained": 0, "ejected": 0, "scalar": 0,
                      "failed": 0}
        self._results: List[Optional[LaneResult]] = [None] * len(self.lanes)
        self._vec: List[int] = []          # lane positions in the farm
        self._fallback: List[int] = []     # lane positions settled scalar
        self._prepare()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        tables: Dict[int, _PhysicsTable] = {}
        groups: Dict[Tuple, _EdgeGroup] = {}
        group_end: Dict[Tuple, float] = {}
        group_lanes: Dict[Tuple, List[int]] = {}

        candidates: List[Tuple[int, _PhysicsTable, Tuple]] = []
        for pos, lane in enumerate(self.lanes):
            try:
                key = self._group_key(lane)
                table = tables.get(id(lane.pll))
                if table is None:
                    probe = lane.pll.loop_filter.state_for_output(
                        lane.pll.locked_control_voltage()
                    )
                    table = _PhysicsTable(lane.pll, probe)
                    tables[id(lane.pll)] = table
            except (_Unsupported, ReproError, AttributeError, TypeError):
                self._fallback.append(pos)
                continue
            candidates.append((pos, table, key))
            group_end[key] = max(group_end.get(key, 0.0), lane.settle_end)
            group_lanes.setdefault(key, []).append(pos)

        supported: List[Tuple[int, _PhysicsTable, _EdgeGroup]] = []
        for pos, table, key in candidates:
            if key not in groups:
                group = self._generate_edges(self.lanes[pos], group_end[key])
                if group is None:
                    for p in group_lanes[key]:
                        self._fallback.append(p)
                    groups[key] = None  # type: ignore[assignment]
                else:
                    groups[key] = group
            group = groups[key]
            if group is None:
                continue
            supported.append((pos, table, group))
        self._build_arrays(supported)

    def _group_key(self, lane: SettleLane) -> Tuple:
        stim = lane.stimulus
        cache_key = stim.cache_key()  # AttributeError -> unsupported
        source = stim.make_source(lane.f_mod, 0.0)
        if not isinstance(source, EdgeSourceBase):
            raise _Unsupported("source is not a plain edge source")
        if (type(source).snapshot_state is not EdgeSourceBase.snapshot_state
                or type(source).restore_state
                is not EdgeSourceBase.restore_state):
            raise _Unsupported("source overrides its snapshot protocol")
        return (cache_key, float(lane.f_mod))

    def _generate_edges(self, lane: SettleLane,
                        t_end: float) -> Optional[_EdgeGroup]:
        """Pull the real source's edge train out to just past ``t_end``."""
        try:
            source = lane.stimulus.make_source(lane.f_mod, 0.0)
            edges = [source.next_edge()]
            if edges[0] < 0.0:
                return None  # the scalar engine rejects this identically
            while edges[-1] <= t_end:
                nxt = source.next_edge()
                if nxt <= edges[-1]:
                    return None
                edges.append(nxt)
        except ReproError:
            return None
        return _EdgeGroup(np.asarray(edges, dtype=np.float64))

    def _build_arrays(
        self,
        supported: List[Tuple[int, _PhysicsTable, _EdgeGroup]],
    ) -> None:
        n = len(supported)
        self._vec = [pos for pos, __, __ in supported]
        self._tables = [table for __, table, __ in supported]
        self._edges = [group.edges for __, __, group in supported]

        # Flat law tables: one row per (physics, drive); a lane's
        # current row is its physics offset plus its applied-drive
        # index.  Keeping them flat lets mixed-physics lots share the
        # same gather-based inner loop.
        self._row_base = np.zeros(n, dtype=np.int64)
        rows: List[_LawRow] = []
        offsets: Dict[int, int] = {}
        for i, table in enumerate(self._tables):
            off = offsets.get(id(table))
            if off is None:
                off = len(rows)
                offsets[id(table)] = off
                rows.extend(table.laws)
            self._row_base[i] = off
        self._law_kind = np.array([r.kind for r in rows], dtype=np.int64)
        self._law_asym = np.array([r.asym for r in rows])
        self._law_tau = np.array([r.tau for r in rows])
        self._law_slope = np.array([r.slope for r in rows])
        self._law_half = np.array([r.half_slope for r in rows])
        self._law_oa = np.array([r.o_a for r in rows])
        self._law_ob = np.array([r.o_b for r in rows])
        self._law_oasym = np.array([r.o_asym for r in rows])
        self._law_ooff = np.array([r.o_off for r in rows])

        def per_lane(getter):
            return np.array([getter(t) for t in self._tables])

        self._base_hz = per_lane(lambda t: t.base_hz)
        self._gain = per_lane(lambda t: t.gain)
        self._v_lo = per_lane(lambda t: t.v_lo)
        self._v_hi = per_lane(lambda t: t.v_hi)
        self._f_center = per_lane(lambda t: t.f_center)
        self._v_center = per_lane(lambda t: t.v_center)
        self._f_min = per_lane(lambda t: t.f_min)
        self._f_max = per_lane(lambda t: t.f_max)
        self._nf = per_lane(lambda t: t.nf)
        self._rdelay = per_lane(lambda t: t.reset_delay)
        self._settle_end = np.array(
            [self.lanes[pos].settle_end for pos in self._vec]
        )

        # Mutable lane state — the scalar simulator's fields, columnar.
        nan = float("nan")
        self._t = np.zeros(n)
        self._vc = np.array([
            self.lanes[pos].pll.loop_filter.state_for_output(
                self.lanes[pos].pll.locked_control_voltage()
            )
            for pos in self._vec
        ]) if n else np.zeros(0)
        self._phase = np.zeros(n)
        self._fbt = self._nf.copy() if n else np.zeros(0)
        self._j = np.zeros(n, dtype=np.int64)
        self._tref = np.array([e[0] for e in self._edges]) if n \
            else np.zeros(0)
        self._up = np.zeros(n, dtype=bool)
        self._dn = np.zeros(n, dtype=bool)
        self._levt = np.full(n, nan)
        self._pres = np.full(n, nan)
        self._upr = np.full(n, nan)
        self._dnr = np.full(n, nan)
        self._drive = np.array(
            [t.idle_idx for t in self._tables], dtype=np.int64
        ) if n else np.zeros(0, dtype=np.int64)
        self._events = np.zeros(n, dtype=np.int64)
        self._active = np.ones(n, dtype=bool)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> List[LaneResult]:
        """Settle every lane; returns one :class:`LaneResult` per lane."""
        for pos in self._fallback:
            self._results[pos] = self._scalar_settle(self.lanes[pos])
        while True:
            idx = np.flatnonzero(self._active)
            if idx.size == 0:
                break
            if idx.size <= self.drain_width:
                for i in idx.tolist():
                    self._hand_off(i, "drained")
                break
            self._step(idx)
        out = []
        for pos, result in enumerate(self._results):
            assert result is not None, f"lane {pos} never resolved"
            self.stats[result.mode] += 1
            if result.snapshot is None:
                self.stats["failed"] += 1
            out.append(result)
        return out

    # ------------------------------------------------------------------
    # one lockstep iteration: one event per live lane
    # ------------------------------------------------------------------
    def _step(self, idx: np.ndarray) -> None:
        t = self._t[idx]
        vc = self._vc[idx]
        rows = self._row_base[idx] + self._drive[idx]
        kindlaw = self._law_kind[rows]
        pres = self._pres[idx]
        has_res = ~np.isnan(pres)

        # --- event selection (mirrors _next_event) -------------------
        best_t = self._settle_end[idx].copy()
        kind = np.full(idx.size, _END, dtype=np.int64)

        tref = self._tref[idx]
        m = tref <= best_t
        best_t[m] = tref[m]
        kind[m] = _REF

        horizon = best_t.copy()
        m = has_res & (pres < horizon)
        horizon[m] = pres[m]
        dt_h = horizon - t

        eject = dt_h < 0.0

        need = self._fbt[idx] - self._phase[idx]
        due = need <= 1e-9
        eject |= due & (need < -1e-6)
        m = due & (t <= best_t)
        best_t[m] = t[m]
        kind[m] = _FB

        out_v = np.where(
            kindlaw == _EXP,
            self._law_oa[rows] * vc + self._law_ob[rows],
            np.where(kindlaw == _RAMP, vc + self._law_ooff[rows], vc),
        )
        solving = ~due & (dt_h > 0.0)
        m = solving & (kindlaw == _CONST)
        if m.any():
            f = self._f_center[idx] + self._gain[idx] * (
                out_v - self._v_center[idx]
            )
            f = np.minimum(np.maximum(f, self._f_min[idx]),
                           self._f_max[idx])
            dt_fb = need / f
            cand = t + dt_fb
            hit = m & (dt_fb <= dt_h) & (cand <= best_t)
            best_t[hit] = cand[hit]
            kind[hit] = _FB
        for i in np.flatnonzero(solving & (kindlaw != _CONST)).tolist():
            row = rows[i]
            if kindlaw[i] == _RAMP:
                seg = RampSegment(float(out_v[i]),
                                  float(self._law_slope[row]))
            else:
                seg = ExponentialSegment(float(out_v[i]),
                                         float(self._law_oasym[row]),
                                         float(self._law_tau[row]))
            table = self._tables[idx[i]]
            dt_fb = table.vco.time_to_phase(seg, float(need[i]),
                                            float(dt_h[i]))
            if dt_fb is not None and t[i] + dt_fb <= best_t[i]:
                best_t[i] = t[i] + dt_fb
                kind[i] = _FB

        m = has_res & (pres <= best_t)
        best_t[m] = pres[m]
        kind[m] = _RESET

        # --- advance (mirrors _advance_to + phase_advance fast path) --
        dt = best_t - t
        adv = dt > 0.0
        is_exp = kindlaw == _EXP
        is_ramp = kindlaw == _RAMP
        tau = self._law_tau[rows]
        x = -dt / tau
        decay = np.ones(idx.size)
        neg_expm1 = np.zeros(idx.size)
        for i in np.flatnonzero(adv & is_exp).tolist():
            decay[i] = math.exp(x[i])
            neg_expm1[i] = -math.expm1(x[i])
        o_asym = self._law_oasym[rows]
        gap = out_v - o_asym
        slope = self._law_slope[rows]
        val = np.where(
            is_exp, o_asym + gap * decay,
            np.where(is_ramp, out_v + slope * dt, out_v),
        )
        v_int = np.where(
            is_exp, o_asym * dt + (gap * tau) * neg_expm1,
            np.where(is_ramp,
                     out_v * dt + (self._law_half[rows] * dt) * dt,
                     out_v * dt),
        )
        v0 = np.minimum(out_v, val)
        v1 = np.maximum(out_v, val)
        eject |= adv & ~((self._v_lo[idx] <= v0) & (v1 <= self._v_hi[idx]))
        asym = self._law_asym[rows]
        vc_new = np.where(
            is_exp, asym + (vc - asym) * decay,
            np.where(is_ramp, vc + slope * dt, vc),
        )
        phase_new = np.where(
            adv,
            self._phase[idx] + (self._base_hz[idx] * dt
                                + self._gain[idx] * v_int),
            self._phase[idx],
        )
        vc_new = np.where(adv, vc_new, vc)

        # --- PFD edge checks (mirrors _check_monotonic / _on_edge) ----
        is_event = kind != _END
        levt = self._levt[idx]
        eject |= is_event & ~np.isnan(levt) & (best_t < levt)
        is_edge = (kind == _REF) | (kind == _FB)
        eject |= is_edge & has_res & (best_t >= pres)
        eject |= (kind == _RESET) & (np.isnan(self._upr[idx])
                                     | np.isnan(self._dnr[idx]))

        # --- hand off ejected lanes from their pre-event state --------
        if eject.any():
            for i in np.flatnonzero(eject).tolist():
                self._hand_off(int(idx[i]), "ejected")
        ok = ~eject
        li = idx[ok]
        if li.size == 0:
            return

        # --- commit -------------------------------------------------
        self._t[li] = best_t[ok]
        self._vc[li] = vc_new[ok]
        self._phase[li] = phase_new[ok]
        kind_ok = kind[ok]
        ev = kind_ok != _END
        self._events[li[ev]] += 1
        self._levt[li[ev]] = best_t[ok][ev]

        ref = kind_ok == _REF
        if ref.any():
            lr = li[ref]
            tr = best_t[ok][ref]
            newly = ~self._up[lr]
            self._up[lr] = True
            set_lanes = lr[newly]
            self._upr[set_lanes] = tr[newly]
            both = newly & self._dn[lr]
            self._pres[lr[both]] = tr[both] + self._rdelay[lr[both]]
            for i, lane in enumerate(lr.tolist()):
                j = int(self._j[lane]) + 1
                self._j[lane] = j
                self._tref[lane] = self._edges[lane][j]

        fb = kind_ok == _FB
        if fb.any():
            lf = li[fb]
            tf = best_t[ok][fb]
            self._phase[lf] = self._fbt[lf]
            self._fbt[lf] = self._fbt[lf] + self._nf[lf]
            newly = ~self._dn[lf]
            self._dn[lf] = True
            set_lanes = lf[newly]
            self._dnr[set_lanes] = tf[newly]
            both = newly & self._up[lf]
            self._pres[lf[both]] = tf[both] + self._rdelay[lf[both]]

        res = kind_ok == _RESET
        if res.any():
            lz = li[res]
            self._up[lz] = False
            self._dn[lz] = False
            self._pres[lz] = np.nan

        if (ref | fb | res).any():
            changed = li[ref | fb | res]
            s = (self._up[changed].astype(np.int64)
                 + 2 * self._dn[changed].astype(np.int64))
            for i, lane in enumerate(changed.tolist()):
                self._drive[lane] = \
                    self._tables[lane].s_to_drive[int(s[i])]

        done = kind_ok == _END
        for lane in li[done].tolist():
            self._active[lane] = False
            self._results[self._vec[lane]] = LaneResult(
                snapshot=self._materialize(lane), mode="vector"
            )

    # ------------------------------------------------------------------
    # scalar hand-off
    # ------------------------------------------------------------------
    def _materialize(self, lane: int) -> SimulatorSnapshot:
        """The lane's array state as a real simulator snapshot."""
        table = self._tables[lane]
        j = int(self._j[lane])
        edge = float(self._edges[lane][j])

        def opt(arr: np.ndarray) -> Optional[float]:
            v = float(arr[lane])
            return None if math.isnan(v) else v

        return SimulatorSnapshot(
            pll_name=table.pll.name,
            time=float(self._t[lane]),
            vc=float(self._vc[lane]),
            vco_phase=float(self._phase[lane]),
            fb_target=float(self._fbt[lane]),
            applied_drive=table.drives[int(self._drive[lane])],
            pending_activation=None,
            loop_open=False,
            t_ref_next=edge,
            next_sample=None,
            events=int(self._events[lane]),
            pfd=PFDSnapshot(
                up=bool(self._up[lane]),
                dn=bool(self._dn[lane]),
                last_event_time=opt(self._levt),
                pending_reset=opt(self._pres),
                last_up_rise=opt(self._upr),
                last_dn_rise=opt(self._dnr),
            ),
            source_state=(float(j + 1), edge),
            pll_signature=table.pll.physics_signature(),
        )

    def _hand_off(self, lane: int, mode: str) -> None:
        """Finish one lane in a scalar simulator from its array state."""
        self._active[lane] = False
        spec = self.lanes[self._vec[lane]]
        try:
            snap = self._materialize(lane)
            source = spec.stimulus.make_source(spec.f_mod, 0.0)
            sim = PLLTransientSimulator(spec.pll, source, record=spec.record)
            sim.restore(snap)
            sim.run_until(spec.settle_end)
            result = LaneResult(snapshot=sim.snapshot(), mode=mode)
        except Exception as exc:  # noqa: BLE001 - leave the lane cold;
            # the orchestrating sweep reproduces the identical error
            result = LaneResult(snapshot=None, mode=mode, error=str(exc))
        self._results[self._vec[lane]] = result

    def _scalar_settle(self, spec: SettleLane) -> LaneResult:
        """Full scalar settle for a lane the farm cannot represent."""
        try:
            source = spec.stimulus.make_source(spec.f_mod, 0.0)
            sim = PLLTransientSimulator(spec.pll, source, record=spec.record)
            sim.run_until(spec.settle_end)
            return LaneResult(snapshot=sim.snapshot(), mode="scalar")
        except Exception as exc:  # noqa: BLE001 - leave the lane cold
            return LaneResult(snapshot=None, mode="scalar", error=str(exc))
