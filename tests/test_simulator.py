"""Closed-loop transient simulator: lock, tracking, hold, observers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.pll.simulator import PLLTransientSimulator
from repro.presets import paper_pll
from repro.stimulus.waveforms import (
    ConstantFrequencySource,
    SinusoidalFMSource,
)


@pytest.fixture
def pll():
    return paper_pll()


class TestLockedSteadyState:
    def test_starts_and_stays_locked(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.5)
        ref = sim.ref_edges.as_array()
        fb = sim.fb_edges.as_array()
        n = min(len(ref), len(fb))
        assert n > 400
        skew = np.abs(ref[:n] - fb[:n])
        assert skew.max() < 1e-9

    def test_output_frequency_nominal(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.2)
        assert sim.output_frequency == pytest.approx(5000.0, rel=1e-6)

    def test_control_voltage_at_lock_point(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.2)
        assert sim.control_voltage == pytest.approx(
            pll.locked_control_voltage(), abs=1e-6
        )

    def test_run_until_locked_immediate(self, pll):
        # The streak must span ~2 natural periods (~0.23 s here), so an
        # already-locked loop is declared locked right after that.
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        t_lock = sim.run_until_locked()
        assert t_lock < 0.3


class TestAcquisition:
    def test_locks_from_voltage_offset(self, pll):
        sim = PLLTransientSimulator(
            pll, ConstantFrequencySource(1000.0),
            initial_control_voltage=2.8,  # ~360 Hz high
        )
        t_lock = sim.run_until_locked(timeout=3.0)
        assert sim.output_frequency == pytest.approx(5000.0, rel=1e-4)
        assert t_lock > 0.0

    def test_locks_to_offset_reference(self, pll):
        f_ref = 1050.0
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(f_ref))
        sim.run_until_locked(timeout=3.0)
        sim.run_for(0.2)
        assert sim.output_frequency == pytest.approx(5 * f_ref, rel=1e-4)

    def test_settling_time_scale_matches_theory(self, pll):
        """The error envelope decays with σ = ζωn: after 5/σ the initial
        offset must be essentially gone, and after 0.2/σ it must not be."""
        sigma = pll.damping() * pll.natural_frequency()
        sim = PLLTransientSimulator(
            pll, ConstantFrequencySource(1000.0),
            initial_control_voltage=2.6,
        )
        sim.run_until(0.2 / sigma)
        early_error = abs(sim.output_frequency - 5000.0)
        sim.run_until(6.0 / sigma)
        late_error = abs(sim.output_frequency - 5000.0)
        assert early_error > 10.0
        assert late_error < 1.0


class TestModulationTracking:
    def test_tracks_slow_fm(self, pll):
        """Well inside the bandwidth the output follows N x input deviation.

        Measured on the capacitor node: the control node additionally
        carries the large intra-cycle feed-through steps of the filter
        zero, which cycle-averaged/held measurements never see.
        """
        src = SinusoidalFMSource(1000.0, deviation=1.0, f_mod=1.0)
        sim = PLLTransientSimulator(pll, src)
        sim.run_until(3.0)
        swing_v = sim.cap_trace.peak_to_peak(start=1.0)
        half_swing_hz = 0.5 * swing_v * pll.vco.gain_hz_per_v
        assert half_swing_hz == pytest.approx(5.0, rel=0.1)

    def test_control_node_shows_feedthrough_steps(self, pll):
        """The raw control node hops by k*(VDD - vc) during pulses —
        the physical reason the BIST reads the held capacitor node."""
        src = SinusoidalFMSource(1000.0, deviation=1.0, f_mod=1.0)
        sim = PLLTransientSimulator(pll, src)
        sim.run_until(2.0)
        ctrl_swing = sim.control_trace.peak_to_peak(start=1.0)
        cap_swing = sim.cap_trace.peak_to_peak(start=1.0)
        assert ctrl_swing > 10.0 * cap_swing

    def test_rejects_fast_fm(self, pll):
        """Far above the bandwidth the output barely moves."""
        src = SinusoidalFMSource(1000.0, deviation=1.0, f_mod=200.0)
        sim = PLLTransientSimulator(pll, src)
        sim.run_until(0.5)
        slow = SinusoidalFMSource(1000.0, deviation=1.0, f_mod=1.0)
        sim_slow = PLLTransientSimulator(pll, slow)
        sim_slow.run_until(2.0)
        fast_swing = sim.cap_trace.peak_to_peak(start=0.2)
        slow_swing = sim_slow.cap_trace.peak_to_peak(start=1.0)
        assert fast_swing < 0.1 * slow_swing


class TestHold:
    def test_open_loop_freezes_frequency(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.1)
        f_before = sim.output_frequency
        sim.open_loop()
        sim.run_for(0.5)
        assert sim.loop_is_open
        assert sim.output_frequency == pytest.approx(f_before, abs=1e-6)

    def test_fb_edges_continue_during_hold(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.1)
        n_before = len(sim.fb_edges)
        sim.open_loop()
        sim.run_for(0.1)
        assert len(sim.fb_edges) > n_before + 90

    def test_hold_mid_modulation_captures_instant(self, pll):
        src = SinusoidalFMSource(1000.0, deviation=1.0, f_mod=2.0)
        sim = PLLTransientSimulator(pll, src)
        sim.run_until(1.125)  # quarter period into cycle 2: near input peak
        f_at_hold = sim.output_frequency
        sim.open_loop()
        sim.run_for(0.5)
        assert sim.output_frequency == pytest.approx(f_at_hold, abs=1e-6)

    def test_close_loop_relocks(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.1)
        sim.open_loop()
        sim.run_for(0.2)
        sim.close_loop()
        t_lock = sim.run_until_locked(timeout=5.0)
        assert not sim.loop_is_open
        assert t_lock <= sim.now


class TestObserversAndResult:
    def test_cycle_observer_sees_every_cycle(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        cycles = []
        sim.add_cycle_observer(cycles.append)
        sim.run_until(0.05)
        # One compare cycle per reference period.
        assert len(cycles) == pytest.approx(50, abs=2)
        assert all(c.reset_time >= max(c.up_rise, c.dn_rise) for c in cycles)

    def test_observer_may_open_loop(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))

        def trip(cycle):
            if cycle.reset_time > 0.02 and not sim.loop_is_open:
                sim.open_loop()

        sim.add_cycle_observer(trip)
        sim.run_until(0.1)
        assert sim.loop_is_open

    def test_result_snapshot(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.05)
        res = sim.result()
        assert res.end_time == pytest.approx(0.05)
        assert res.events > 100
        assert "TransientResult" in res.summary()

    def test_sample_interval_records_uniformly(self, pll):
        sim = PLLTransientSimulator(
            pll, ConstantFrequencySource(1000.0), sample_interval=1e-3
        )
        sim.run_until(0.05)
        t = sim.control_trace.times
        assert len(t) > 50

    def test_run_backwards_rejected(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.01)
        with pytest.raises(SimulationError):
            sim.run_until(0.005)

    def test_pfd_streams_recorded(self, pll):
        sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
        sim.run_until(0.05)
        up_w, dn_w = sim.result().pfd.recorded_pulses()
        assert len(up_w) > 40
        # Locked loop: dead-zone glitches only, width = reset delay.
        assert max(up_w) < 10 * pll.pfd_reset_delay
