"""Warm-start sweeps: lock-state cache, adaptive settling, memoisation.

Two distinct warm paths with two distinct contracts:

* **Cache-warm** (``LockStateCache``): re-running a tone restores the
  cached settled snapshot — results are **bit-identical** to the cold
  run (the snapshot guarantee).
* **Adaptive settle** (``settle="adaptive"``): lock detection replaces
  the fixed stage-0 wait — explicitly approximate; counted results must
  agree with the fixed policy to counter resolution for in-band tones.
"""

from __future__ import annotations

import pytest

from repro.core import (
    LockStateCache,
    SerialSweepExecutor,
    SweepPlan,
    ToneTestSequencer,
    TransferFunctionMonitor,
)
from repro.errors import ConfigurationError
from repro.presets import paper_pll, paper_stimulus


@pytest.fixture()
def sequencer(pll_linear, sine_stimulus, fast_bist_config):
    return ToneTestSequencer(
        pll_linear, sine_stimulus, fast_bist_config, cache=LockStateCache()
    )


def _assert_identical(a, b):
    assert a.held.vco_frequency_hz == b.held.vco_frequency_hz
    assert a.held.measurement.count == b.held.measurement.count
    assert a.phase_count.pulses == b.phase_count.pulses
    assert a.phase_count.t_start == b.phase_count.t_start
    assert a.phase_count.t_stop == b.phase_count.t_stop
    assert a.arm_time == b.arm_time
    assert a.peak_event.time == b.peak_event.time
    assert a.delta_f_hz == b.delta_f_hz
    assert a.phase_delay_deg == b.phase_delay_deg
    assert [t for __, t in a.stage_log] == [t for __, t in b.stage_log]


class TestCacheWarmRuns:
    def test_warm_rerun_bit_identical(self, sequencer):
        cold = sequencer.run(8.0)
        warm = sequencer.run(8.0)
        assert cold.timing is not None and not cold.timing.warm
        assert warm.timing is not None and warm.timing.warm
        _assert_identical(cold, warm)
        hits, misses = sequencer.cache.stats
        assert hits == 1 and misses == 1

    def test_warm_rerun_without_cache_is_cold(
        self, pll_linear, sine_stimulus, fast_bist_config
    ):
        sequencer = ToneTestSequencer(
            pll_linear, sine_stimulus, fast_bist_config
        )
        first = sequencer.run(8.0)
        second = sequencer.run(8.0)
        assert not first.timing.warm and not second.timing.warm
        _assert_identical(first, second)

    def test_fast_tones_bypass_cache(self, sequencer):
        # Above f_ref/8 there may be no PFD cycle between settle end and
        # arm, so such tones are never cached.
        f_fast = sequencer.pll.f_ref / 4.0
        sequencer.run(f_fast)
        sequencer.run(f_fast)
        hits, _misses = sequencer.cache.stats
        assert hits == 0
        assert len(sequencer.cache) == 0

    def test_monitor_measure_tone_warms_up(
        self, pll_linear, sine_stimulus, fast_bist_config
    ):
        monitor = TransferFunctionMonitor(
            pll_linear, sine_stimulus, fast_bist_config
        )
        cold = monitor.measure_tone(8.0)
        warm = monitor.measure_tone(8.0)
        assert warm.timing.warm and not cold.timing.warm
        _assert_identical(cold, warm)

    def test_repeated_sweep_is_served_warm(
        self, pll_linear, sine_stimulus, fast_bist_config
    ):
        monitor = TransferFunctionMonitor(
            pll_linear, sine_stimulus, fast_bist_config
        )
        plan = SweepPlan((4.0, 8.0, 16.0))
        first = monitor.run(plan)
        second = monitor.run(plan)
        assert all(not m.timing.warm for m in first.measurements)
        assert all(m.timing.warm for m in second.measurements)
        for a, b in zip(first.measurements, second.measurements):
            _assert_identical(a, b)


class TestLockStateCacheUnit:
    def test_lru_eviction(self):
        cache = LockStateCache(max_entries=2)
        cache.put("a", "snap-a")  # type: ignore[arg-type]
        cache.put("b", "snap-b")  # type: ignore[arg-type]
        assert cache.get("a") == "snap-a"  # refresh a
        cache.put("c", "snap-c")  # type: ignore[arg-type]
        assert cache.get("b") is None  # b was LRU
        assert cache.get("a") == "snap-a"
        assert cache.get("c") == "snap-c"
        assert len(cache) == 2

    def test_stats_and_clear(self):
        cache = LockStateCache()
        assert cache.get("missing") is None
        cache.put("k", "v")  # type: ignore[arg-type]
        assert cache.get("k") == "v"
        assert cache.stats == (1, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == (0, 0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            LockStateCache(max_entries=0)

    def test_contains_does_not_touch_counters(self):
        cache = LockStateCache()
        cache.put("k", "v")  # type: ignore[arg-type]
        assert "k" in cache
        assert "missing" not in cache
        assert cache.stats == (0, 0)

    def test_export_merge_roundtrip(self):
        cache = LockStateCache()
        cache.put("a", "snap-a")  # type: ignore[arg-type]
        cache.put("b", "snap-b")  # type: ignore[arg-type]
        cache.get("a")  # refresh: LRU order is now b, a
        exported = cache.export()
        assert [key for key, __ in exported] == ["b", "a"]
        clone = LockStateCache()
        assert clone.merge(exported) == 2
        # Merging an export into an empty cache reproduces contents and
        # recency order; counters describe history and do not travel.
        assert clone.export() == exported
        assert clone.stats == (0, 0)
        assert clone.stats_detail["merged"] == 2

    def test_merge_existing_entries_win(self):
        cache = LockStateCache()
        cache.put("k", "incumbent")  # type: ignore[arg-type]
        added = cache.merge((("k", "challenger"), ("new", "snap")))
        assert added == 1
        assert cache.get("k") == "incumbent"
        assert cache.get("new") == "snap"

    def test_merge_is_idempotent(self):
        cache = LockStateCache()
        entries = (("a", "1"), ("b", "2"))
        assert cache.merge(entries) == 2
        assert cache.merge(entries) == 0
        assert cache.stats_detail["merged"] == 2
        assert len(cache) == 2

    def test_merge_respects_capacity_and_counts_evictions(self):
        cache = LockStateCache(max_entries=2)
        added = cache.merge((("a", "1"), ("b", "2"), ("c", "3")))
        assert added == 3
        assert len(cache) == 2
        assert "a" not in cache and "b" in cache and "c" in cache
        detail = cache.stats_detail
        assert detail["evictions"] == 1
        assert detail["merged"] == 3
        assert detail["entries"] == 2
        assert detail["capacity"] == 2

    def test_clear_resets_all_counters(self):
        cache = LockStateCache(max_entries=1)
        cache.merge((("a", "1"), ("b", "2")))  # one merge eviction
        cache.get("b")
        cache.get("missing")
        assert cache.stats_detail["evictions"] == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats_detail == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "merged": 0,
            "entries": 0,
            "capacity": 1,
        }


class TestAdaptiveSettle:
    def test_rejects_unknown_policy(self, sequencer):
        with pytest.raises(ConfigurationError):
            sequencer.run(8.0, settle="eventually")

    def test_adaptive_agrees_with_fixed_in_band(
        self, pll_linear, sine_stimulus, bist_config
    ):
        # In-band tones (well below ~3 fn) must agree to counter
        # resolution; adaptive settling is an approximation, not a
        # bit-identity path.
        sequencer = ToneTestSequencer(pll_linear, sine_stimulus, bist_config)
        for f_mod in (2.0, 8.0):
            fixed = sequencer.run(f_mod, settle="fixed")
            adaptive = sequencer.run(f_mod, settle="adaptive")
            assert adaptive.delta_f_hz == pytest.approx(
                fixed.delta_f_hz, rel=0.05, abs=0.05
            )
            assert adaptive.phase_delay_deg == pytest.approx(
                fixed.phase_delay_deg, abs=10.0
            )

    def test_adaptive_never_arms_later_than_fixed(
        self, pll_linear, sine_stimulus, bist_config
    ):
        sequencer = ToneTestSequencer(pll_linear, sine_stimulus, bist_config)
        for f_mod in (2.0, 8.0, 40.0):
            fixed = sequencer.run(f_mod, settle="fixed")
            adaptive = sequencer.run(f_mod, settle="adaptive")
            assert adaptive.arm_time <= fixed.arm_time

    def test_serial_executor_chains_seeds(
        self, pll_linear, fast_bist_config
    ):
        stimulus = paper_stimulus("multitone")
        outcomes = SerialSweepExecutor().run_tones(
            pll_linear,
            stimulus,
            fast_bist_config,
            (4.0, 8.0, 16.0),
            settle="adaptive",
        )
        assert all(not o.failed for o in outcomes)
        assert [o.f_mod for o in outcomes] == [4.0, 8.0, 16.0]


class TestNominalBaselineMemoised:
    def test_same_value_and_cached(
        self, pll_linear, sine_stimulus, fast_bist_config
    ):
        from repro.core.sequencer import _NOMINAL_FREQUENCY_MEMO

        _NOMINAL_FREQUENCY_MEMO.clear()
        sequencer = ToneTestSequencer(
            pll_linear, sine_stimulus, fast_bist_config
        )
        first = sequencer.measure_nominal_frequency()
        second = sequencer.measure_nominal_frequency()
        assert first == second
        assert list(_NOMINAL_FREQUENCY_MEMO.values()) == [first]

    def test_distinct_gates_distinct_entries(
        self, pll_linear, sine_stimulus, fast_bist_config
    ):
        from repro.core.sequencer import _NOMINAL_FREQUENCY_MEMO

        _NOMINAL_FREQUENCY_MEMO.clear()
        f128 = ToneTestSequencer(
            pll_linear, sine_stimulus, fast_bist_config
        ).measure_nominal_frequency(128)
        f64 = ToneTestSequencer(
            pll_linear, sine_stimulus, fast_bist_config
        ).measure_nominal_frequency(64)
        # Distinct gate widths key apart; a fresh same-physics sequencer
        # does not add entries of its own.
        assert len(_NOMINAL_FREQUENCY_MEMO) == 2
        assert f128 == pytest.approx(f64, rel=1e-6)

    def test_monitor_delegates(self, pll_linear, sine_stimulus, fast_bist_config):
        monitor = TransferFunctionMonitor(
            pll_linear, sine_stimulus, fast_bist_config
        )
        value = monitor.measure_nominal_frequency()
        assert value == pytest.approx(
            pll_linear.f_out_nominal, rel=1e-3
        )
        assert monitor.measure_nominal_frequency() == value
