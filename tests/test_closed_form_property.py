"""Property suite for the closed-form analytic settle tier.

:class:`~repro.sim.closed_form.ClosedFormLotSimulator` advances
eligible lanes edge-to-edge with analytic state updates instead of the
lockstep arrays.  Its contracts, probed here property-style:

* **analytic parity** — across physics and tone draws, a lane settled
  on the closed-form tier materialises a snapshot *exactly equal* to a
  cold scalar settle (full dataclass equality, PFD state and counters
  included), which is what lets the tier sit invisibly in front of the
  other engines;
* **boundary behaviour** — lanes that graze the VCO clamp (lock/unlock
  boundary) either stay on the analytic tier or eject mid-flight to a
  scalar finish, and both paths still satisfy the identity above;
* **tier cascade** — nonlinear (74HCT4046A) and exponential-law lanes
  are rejected *at eligibility* and ride the vectorized tier instead;
  ``engine="auto"`` resolves closed_form → vectorized → scalar per
  lane with zero report diffs on a mixed lot;
* **selection plumbing** — every orchestration surface (monitor, batch
  reports, presettle, service jobs, CLI) validates the engine name
  against one shared vocabulary that includes ``closed_form`` and
  ``auto``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LockStateCache,
    SweepPlan,
    TransferFunctionMonitor,
)
from repro.core.architecture import BISTConfig
from repro.errors import ConfigurationError
from repro.pll import ChargePumpPLL, CurrentChargePump, VCO
from repro.pll.faults import FAULT_LIBRARY, apply_fault
from repro.pll.loop_filter import PassiveLagLeadFilter
from repro.pll.lot import presettle_lot
from repro.pll.simulator import PLLTransientSimulator
from repro.presets import paper_pll, paper_stimulus
from repro.reporting import DeviceReportRequest, batch_device_reports
from repro.sim.closed_form import ClosedFormLotSimulator
from repro.stimulus import MultiToneFSKStimulus

# Cacheable tones for the current-mode DUT below (8·f_mod ≤ f_ref),
# inside the loop band (effective fn ≈ 563 Hz) so full sweeps measure.
CDR_TONES = (500.0, 1000.0)
# Cacheable tones for the paper DUT (f_ref = 1 kHz).
PAPER_TONES = (10.0, 55.0)


def _cdr_pll(
    i_up=50e-6,
    r1=1e3,
    r2=2e3,
    c=100e-9,
    gain=100e3,
    n=4,
    f_min=400e3,
    f_max=1200e3,
    name="cdr-ll",
):
    """Current-mode lag-lead DUT: every law is RAMP/CONST, so the lane
    is closed-form eligible (the paper's rail-driver pump, by contrast,
    charges the filter exponentially and rides the vectorized tier)."""
    return ChargePumpPLL(
        pump=CurrentChargePump(i_up=i_up),
        loop_filter=PassiveLagLeadFilter(r1=r1, r2=r2, c=c),
        vco=VCO(800e3, gain, 1.5, f_min=f_min, f_max=f_max),
        n=n,
        f_ref=200e3,
        pfd_reset_delay=2e-9,
        name=name,
    )


def _cdr_stimulus(deviation=50.0):
    return MultiToneFSKStimulus(200e3, deviation=deviation, steps=10)


def _cdr_config():
    return BISTConfig(
        test_clock_hz=100e6,
        settle_cycles=2,
        frequency_count_periods=32,
        detector_inverter_delay=8e-9,
        detector_and_delay=1e-9,
    )


def _scalar_snapshot(pll, stimulus, f_mod, settle_end):
    """The reference: a cold scalar settle, exactly as the sequencer
    runs it."""
    source = stimulus.make_source(f_mod, start_time=0.0)
    sim = PLLTransientSimulator(pll, source, record="counters")
    sim.run_until(settle_end)
    return sim.snapshot()


def _lanes(pll, stimulus, tones, settle_cycles=2):
    from repro.sim.vectorized import SettleLane

    return [
        SettleLane(
            pll=pll,
            stimulus=stimulus,
            f_mod=f_mod,
            settle_end=settle_cycles / f_mod,
            record="counters",
        )
        for f_mod in tones
    ]


class TestAnalyticParity:
    @settings(max_examples=10, deadline=None)
    @given(
        scale_i=st.floats(0.85, 1.25),
        scale_r=st.floats(0.85, 1.25),
        scale_g=st.floats(0.85, 1.25),
        scale_c=st.floats(0.85, 1.25),
        f_mod=st.sampled_from((5e3, 12.5e3, 20e3, 25e3)),
        deviation=st.sampled_from((20.0, 50.0, 500.0)),
    )
    def test_physics_draws_match_scalar(
        self, scale_i, scale_r, scale_g, scale_c, f_mod, deviation
    ):
        """Analytic inter-event updates equal the scalar event loop
        across process-corner physics and tone draws."""
        pll = _cdr_pll(
            i_up=50e-6 * scale_i,
            r1=1e3 * scale_r,
            r2=2e3 * scale_r,
            c=100e-9 * scale_c,
            gain=100e3 * scale_g,
        )
        stimulus = _cdr_stimulus(deviation)
        lanes = _lanes(pll, stimulus, (f_mod,))
        farm = ClosedFormLotSimulator(lanes, drain_width=0)
        result = farm.run()[0]
        assert result.mode == "closed_form", result.error
        expected = _scalar_snapshot(
            pll, stimulus, f_mod, lanes[0].settle_end
        )
        assert result.snapshot == expected
        assert farm.stats["closed_form"] == 1

    @settings(max_examples=10, deadline=None)
    @given(
        window_hz=st.floats(100.0, 20e3),
        deviation=st.sampled_from((50.0, 2e3, 8e3)),
        f_mod=st.sampled_from((12.5e3, 20e3)),
    )
    def test_clamp_boundary_stays_bit_identical(
        self, window_hz, deviation, f_mod
    ):
        """Lock/unlock boundary draws: a VCO clamp window shrunk around
        the operating point either keeps the lane analytic or ejects it
        to a scalar finish — the snapshot is bit-identical either way."""
        pll = _cdr_pll(
            f_min=800e3 - window_hz, f_max=800e3 + window_hz
        )
        stimulus = _cdr_stimulus(deviation)
        lanes = _lanes(pll, stimulus, (f_mod,))
        result = ClosedFormLotSimulator(lanes, drain_width=0).run()[0]
        assert result.mode in ("closed_form", "ejected")
        expected = _scalar_snapshot(
            pll, stimulus, f_mod, lanes[0].settle_end
        )
        assert result.snapshot == expected

    def test_razor_clamp_ejects_to_scalar_finish(self):
        """A razor-thin clamp window *must* eject mid-flight (the
        analytic law cannot represent the clamped segment), and the
        scalar finish keeps the snapshot exact."""
        pll = _cdr_pll(f_min=799.9e3, f_max=800.1e3)
        stimulus = _cdr_stimulus()
        lanes = _lanes(pll, stimulus, (20e3,))
        farm = ClosedFormLotSimulator(lanes, drain_width=0)
        result = farm.run()[0]
        assert result.mode == "ejected"
        assert farm.stats["ejected"] == 1
        assert farm.stats["closed_form"] == 0
        expected = _scalar_snapshot(
            pll, stimulus, 20e3, lanes[0].settle_end
        )
        assert result.snapshot == expected


class TestTierCascade:
    def test_hct4046_lanes_ride_the_vectorized_tier(self, fast_bist_config):
        """Nonlinear 74HCT4046A lanes are rejected at closed-form
        eligibility and fall through to the lockstep tier — still
        bit-identical, still flagged nonlinear."""
        pll = paper_pll(nonlinear=True)
        stimulus = paper_stimulus("multitone")
        lanes = _lanes(
            pll, stimulus, PAPER_TONES,
            settle_cycles=fast_bist_config.settle_cycles,
        )
        farm = ClosedFormLotSimulator(lanes, drain_width=0)
        results = farm.run()
        assert farm.stats["closed_form"] == 0
        for lane, result in zip(lanes, results):
            assert result.mode == "vector", result.error
            assert result.nonlinear
            expected = _scalar_snapshot(
                pll, stimulus, lane.f_mod, lane.settle_end
            )
            assert result.snapshot == expected

    def test_exponential_laws_ride_the_vectorized_tier(
        self, fast_bist_config
    ):
        """The paper's rail-driver pump charges the filter through an
        exponential law — linear physics, but not representable by the
        per-edge polynomial update, so the tier cascades."""
        pll = paper_pll()
        stimulus = paper_stimulus("multitone")
        lanes = _lanes(
            pll, stimulus, PAPER_TONES,
            settle_cycles=fast_bist_config.settle_cycles,
        )
        farm = ClosedFormLotSimulator(lanes, drain_width=0)
        results = farm.run()
        assert farm.stats["closed_form"] == 0
        for lane, result in zip(lanes, results):
            assert result.mode == "vector", result.error
            expected = _scalar_snapshot(
                pll, stimulus, lane.f_mod, lane.settle_end
            )
            assert result.snapshot == expected

    def test_mixed_lot_auto_reports_byte_identical(self, fast_bist_config):
        """The acceptance lot: closed-form-eligible + linear-EXP +
        HCT4046 + fault-library dies through ``engine="auto"`` — every
        tier exercised, zero report diffs against the scalar engine."""
        label = sorted(FAULT_LIBRARY)[0]
        paper_stim = paper_stimulus("multitone")
        paper_plan = SweepPlan(PAPER_TONES)
        lot = [
            DeviceReportRequest(
                pll=replace(paper_pll(), name="lin-000"),
                stimulus=paper_stim,
                plan=paper_plan,
                config=fast_bist_config,
            ),
            DeviceReportRequest(
                pll=replace(paper_pll(nonlinear=True), name="hct-000"),
                stimulus=paper_stim,
                plan=paper_plan,
                config=fast_bist_config,
            ),
            DeviceReportRequest(
                pll=replace(
                    apply_fault(paper_pll(), FAULT_LIBRARY[label]),
                    name="fault-000",
                ),
                stimulus=paper_stim,
                plan=paper_plan,
                config=fast_bist_config,
            ),
            DeviceReportRequest(
                pll=_cdr_pll(name="cdr-000"),
                stimulus=_cdr_stimulus(),
                plan=SweepPlan(CDR_TONES),
                config=_cdr_config(),
            ),
        ]
        cold = batch_device_reports(lot)
        cache = LockStateCache()
        auto = batch_device_reports(lot, cache=cache, engine="auto")
        assert auto == cold
        stats = cache.presettle_stats
        # Tier-by-tier resolution: the current-mode die settled on the
        # analytic tier, everything else on the lockstep farm (narrow
        # remainders may drain to the scalar loop — still a clean pass).
        assert stats.closed_form_lanes == len(CDR_TONES)
        assert (
            stats.vector + stats.drained
            == stats.unique - stats.closed_form_lanes
        )
        assert stats.hct4046_lanes == len(PAPER_TONES)
        assert stats.ejected == stats.scalar == stats.failed == 0


class TestEngineSelection:
    def test_monitor_closed_form_and_auto_bit_identical(self):
        pll = _cdr_pll()
        stimulus = _cdr_stimulus()
        config = _cdr_config()
        plan = SweepPlan(CDR_TONES)
        cold = TransferFunctionMonitor(pll, stimulus, config).run(plan)
        for engine in ("closed_form", "auto"):
            fast = TransferFunctionMonitor(pll, stimulus, config).run(
                plan, engine=engine
            )
            assert fast.measurements == cold.measurements
            assert list(fast.response.magnitude_db) == list(
                cold.response.magnitude_db
            )

    def test_monitor_engine_settle_policy(self, fast_bist_config):
        monitor = TransferFunctionMonitor(
            paper_pll(), paper_stimulus("multitone"), fast_bist_config
        )
        plan = SweepPlan(PAPER_TONES)
        with pytest.raises(ConfigurationError):
            monitor.run(plan, engine="closed_form", settle="adaptive")
        # "auto" is a policy, not a farm: with an uncacheable settle it
        # degrades to the scalar path instead of refusing.
        cold = monitor.run(plan, settle="adaptive")
        auto = monitor.run(plan, settle="adaptive", engine="auto")
        assert auto.measurements == cold.measurements

    def test_presettle_lot_validates_engine(self, fast_bist_config):
        jobs = [(
            paper_pll(), paper_stimulus("multitone"), fast_bist_config,
            PAPER_TONES,
        )]
        with pytest.raises(ConfigurationError) as excinfo:
            presettle_lot(jobs, LockStateCache(), engine="quantum")
        message = str(excinfo.value)
        assert "'closed_form'" in message
        assert "'auto'" in message
        # The presettle farm vocabulary excludes "scalar": a scalar
        # presettle is a no-op, so asking for one is a caller bug.
        with pytest.raises(ConfigurationError):
            presettle_lot(jobs, LockStateCache(), engine="scalar")

    def test_batch_rejects_unknown_engine_with_choices(
        self, fast_bist_config
    ):
        request = DeviceReportRequest(
            pll=paper_pll(),
            stimulus=paper_stimulus("multitone"),
            plan=SweepPlan(PAPER_TONES),
            config=fast_bist_config,
        )
        with pytest.raises(ConfigurationError) as excinfo:
            batch_device_reports([request], engine="quantum")
        assert "'auto'" in str(excinfo.value)

    def test_job_request_engine_policy(self):
        from repro.service import SweepJobSpec
        from repro.service.jobs import SweepJobRequest
        from repro.service.protocol import resolve_spec

        spec = SweepJobSpec(points=5, engine="auto")
        assert SweepJobSpec.from_dict(spec.to_dict()) == spec
        assert resolve_spec(spec).engine == "auto"
        with pytest.raises(ConfigurationError):
            SweepJobRequest(
                pll=paper_pll(),
                stimulus=paper_stimulus("multitone"),
                plan=SweepPlan(PAPER_TONES),
                engine="closed_form",
                settle="adaptive",
            )
        # "auto" + adaptive is accepted (monitor degrades it to scalar).
        request = SweepJobRequest(
            pll=paper_pll(),
            stimulus=paper_stimulus("multitone"),
            plan=SweepPlan(PAPER_TONES),
            engine="auto",
            settle="adaptive",
        )
        assert request.engine == "auto"

    def test_cli_accepts_engine_tiers(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("sweep", "lot", "submit"):
            for engine in ("closed_form", "auto"):
                args = parser.parse_args([command, "--engine", engine])
                assert args.engine == engine
            with pytest.raises(SystemExit):
                parser.parse_args([command, "--engine", "quantum"])

    def test_validate_engine_lists_choices(self):
        from repro.engines import ENGINES, validate_engine

        with pytest.raises(ConfigurationError) as excinfo:
            validate_engine("quantum")
        message = str(excinfo.value)
        for engine in ENGINES:
            assert f"'{engine}'" in message


class TestPresettleStats:
    def test_closed_form_counters_and_summary(self):
        jobs = [(_cdr_pll(), _cdr_stimulus(), _cdr_config(), CDR_TONES)]
        cache = LockStateCache()
        stats = presettle_lot(
            jobs, cache, engine="closed_form", drain_width=0
        )
        assert stats.closed_form_lanes == len(CDR_TONES)
        assert stats.vector == 0
        assert stats.tones_vectorized == len(CDR_TONES)
        assert "closed-form" in stats.summary()
        assert len(cache) == len(CDR_TONES)
        # At farm level "auto" and "closed_form" are the same cascade.
        auto = presettle_lot(
            jobs, LockStateCache(), engine="auto", drain_width=0
        )
        assert auto.closed_form_lanes == stats.closed_form_lanes

    def test_vectorized_engine_reports_no_closed_form_lanes(self):
        stats = presettle_lot(
            [(_cdr_pll(), _cdr_stimulus(), _cdr_config(), CDR_TONES)],
            LockStateCache(),
            engine="vectorized",
            drain_width=0,
        )
        assert stats.closed_form_lanes == 0
        assert stats.tones_vectorized == len(CDR_TONES)
