"""Linear s-domain theory of the CP-PLL closed loop.

Implements Section 2 of the paper: the closed-loop phase transfer
function (eqs. 1 and 4), the second-order relationships between natural
frequency, damping, peaking and bandwidth (eqs. 5–6 and the Figure 1
annotations), Bode-response evaluation, and the inverse problem —
estimating ωn, ζ and ω3dB from a measured magnitude/phase plot, which is
what the BIST's post-processing does.
"""

from repro.analysis.second_order import (
    SecondOrderParameters,
    closed_loop_with_zero,
    closed_loop_standard,
    damping_from_peaking_db,
    peaking_db_with_zero,
)
from repro.analysis.linear_model import PLLLinearModel
from repro.analysis.bode import BodeResponse, compute_bode, log_frequency_grid
from repro.analysis.fitting import EstimatedParameters, estimate_second_order
from repro.analysis.sensitivity import (
    ComponentSensitivity,
    DiagnosisCandidate,
    component_sensitivities,
    diagnose_shift,
)
from repro.analysis.jitter import JitterAnalysis, JitterTransferPoint
from repro.analysis.design import design_lag_lead_pll, design_series_rc_pll
from repro.analysis.openloop import StabilityMargins, loop_stability

__all__ = [
    "SecondOrderParameters",
    "closed_loop_with_zero",
    "closed_loop_standard",
    "damping_from_peaking_db",
    "peaking_db_with_zero",
    "PLLLinearModel",
    "BodeResponse",
    "compute_bode",
    "log_frequency_grid",
    "EstimatedParameters",
    "estimate_second_order",
    "ComponentSensitivity",
    "DiagnosisCandidate",
    "component_sensitivities",
    "diagnose_shift",
    "JitterAnalysis",
    "JitterTransferPoint",
    "design_lag_lead_pll",
    "design_series_rc_pll",
    "StabilityMargins",
    "loop_stability",
]
