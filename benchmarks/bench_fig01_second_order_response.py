"""Figure 1 — generic second-order closed-loop magnitude/phase with the
annotated quantities: the 0 dB asymptote, ωp (peak) and ω3dB.

Regenerated for the paper's damping (ζ = 0.426) on a normalised
frequency axis, and checks the three annotations quantitatively.
"""

import numpy as np

from repro.analysis.bode import compute_bode, log_frequency_grid
from repro.analysis.second_order import SecondOrderParameters
from repro.reporting import ascii_bode, format_table

ZETA = 0.426
WN = 1.0  # normalised


def build_response():
    params = SecondOrderParameters(wn=WN, zeta=ZETA)
    f = log_frequency_grid(WN / (2 * np.pi) / 100.0, WN / (2 * np.pi) * 100.0, 161)
    bode = compute_bode(
        lambda s: params.response(np.imag(s)), f, label="H(jw) (eq. 4 form)"
    )
    return params, bode


def test_fig01_second_order_response(benchmark, report):
    params, bode = benchmark(build_response)
    annotations = format_table(
        ["annotation", "value"],
        [
            ["0 dB asymptote (w << wp)", f"{bode.magnitude_db[0]:+.4f} dB"],
            ["wp / wn (peak location)", f"{params.peak_frequency / params.wn:.4f}"],
            ["peak height", f"{params.peaking_db:.3f} dB"],
            ["w3dB / wn (one-sided loop bandwidth)",
             f"{params.w3db / params.wn:.4f}"],
            ["phase at wp", f"{bode.phase_at(params.peak_frequency_hz):.1f} deg"],
        ],
        title=f"Figure 1 annotations at zeta = {ZETA}",
    )
    plot = ascii_bode([bode], title="Figure 1 — second-order closed loop")
    report("fig01_second_order_response", annotations + "\n\n" + plot)

    # Shape checks per Section 2.
    assert abs(bode.magnitude_db[0]) < 0.01          # 0 dB asymptote
    assert abs(bode.phase_deg[0]) < 2.0              # ~0 phase in-band
    assert params.peak_frequency < params.wn          # peak below wn
    assert params.w3db > params.wn                    # bandwidth beyond wn
    assert bode.magnitude_db[-1] < -30.0              # roll-off
