"""Shared machinery for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it prints
the rows/series to stdout *and* writes them to
``benchmarks/results/<name>.txt`` so the artefacts survive pytest's
output capture.  Expensive closed-loop sweeps are computed once per
session and shared.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.monitor import TransferFunctionMonitor
from repro.presets import (
    paper_bist_config,
    paper_pll,
    paper_stimulus,
    paper_sweep,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def no_stray_shared_memory():
    """Fail the session if a benchmark leaks a shared-memory segment."""
    shm_dir = pathlib.Path("/dev/shm")
    before = (
        {p.name for p in shm_dir.glob("psm_*")} if shm_dir.is_dir() else set()
    )
    yield
    if shm_dir.is_dir():
        stray = {p.name for p in shm_dir.glob("psm_*")} - before
        assert not stray, (
            f"benchmark session leaked shared-memory segments: {sorted(stray)}"
        )


@pytest.fixture(scope="session")
def report():
    """Print a named report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture(scope="session")
def paper_dut():
    """The reconstructed Table 3 device under test (linear)."""
    return paper_pll()


@pytest.fixture(scope="session")
def paper_plan():
    """The Figures 11-12 modulation-frequency sweep."""
    return paper_sweep()


@pytest.fixture(scope="session")
def figure11_12_sweeps(paper_dut, paper_plan):
    """The three stimulus sweeps behind Figures 11 and 12, run once."""
    config = paper_bist_config()
    out = {}
    for kind in ("sine", "multitone", "twotone"):
        monitor = TransferFunctionMonitor(
            paper_dut, paper_stimulus(kind), config
        )
        out[kind] = monitor.run(paper_plan)
    return out
