"""Figure 5 — CP/PFD operation: lead, lag and locked waveforms.

Regenerates the three panels of Figure 5 by driving the PFD open-loop
with skewed edge trains and reporting the UP/DOWN pulse widths —
including the dead-zone glitches whose width equals the reset
propagation delay.
"""

from repro.pll.pfd import PhaseFrequencyDetector
from repro.reporting import format_table

RESET_DELAY = 20e-9
PERIOD = 1e-3
CYCLES = 50


def drive(skew_seconds):
    """Run CYCLES compare cycles with a constant edge skew."""
    pfd = PhaseFrequencyDetector(reset_delay=RESET_DELAY)
    for k in range(CYCLES):
        t = (k + 1) * PERIOD
        if skew_seconds >= 0.0:
            pfd.on_ref_edge(t)
            pfd.on_fb_edge(t + skew_seconds)
        else:
            pfd.on_fb_edge(t)
            pfd.on_ref_edge(t - skew_seconds)
        pfd.on_reset(pfd.pending_reset_time)
    up_w, dn_w = pfd.recorded_pulses()
    return sum(up_w) / len(up_w), sum(dn_w) / len(dn_w)


def build_table():
    rows = []
    for label, skew in [
        ("θi leads (VCO must rise)", +2e-4),
        ("θi = θFB (locked: dead-zone pulses)", 0.0),
        ("θi lags (VCO must fall)", -2e-4),
    ]:
        up, dn = drive(skew)
        rows.append([
            label,
            f"{up * 1e6:.3f} µs",
            f"{dn * 1e6:.3f} µs",
            f"{(up - dn) * 1e6:+.3f} µs",
        ])
    return format_table(
        ["condition", "mean UP width", "mean DOWN width", "net drive / cycle"],
        rows,
        title=(
            "Figure 5 — PFD operation "
            f"(reset delay = dead-zone glitch = {RESET_DELAY*1e9:g} ns)"
        ),
    )


def test_fig05_pfd_operation(benchmark, report):
    table = benchmark(build_table)
    report("fig05_pfd_operation", table)

    up_lead, dn_lead = drive(+2e-4)
    up_lock, dn_lock = drive(0.0)
    up_lag, dn_lag = drive(-2e-4)
    # Lead: wide UP, glitch DOWN.  Lag: mirror.  Lock: glitches both.
    assert up_lead > 10 * dn_lead
    assert dn_lag > 10 * up_lag
    assert abs(up_lock - RESET_DELAY) < 1e-12
    assert abs(dn_lock - RESET_DELAY) < 1e-12
    # Net drive per cycle is the edge skew, each direction.
    assert abs((up_lead - dn_lead) - 2e-4) < 1e-9
    assert abs((dn_lag - up_lag) - 2e-4) < 1e-9
