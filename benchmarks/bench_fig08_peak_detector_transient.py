"""Figure 8 — peak-detector transient: loop-filter node, UP/DOWN pulses
and the MFREQ sampling instants.

Regenerates the simulation view of Figure 8: one modulated tone on the
paper set-up, with the capacitor-node waveform, the per-cycle UP/DOWN
activity, and the MFREQ events overlaid.  The quantitative shape check
is the paper's claim itself: MFREQ fires at the maxima of the output
frequency excursion (the capacitor-node peaks), once per modulation
cycle.
"""

import numpy as np

from repro.core.peak_detector import PeakFrequencyDetector
from repro.pll.simulator import PLLTransientSimulator
from repro.presets import paper_bist_config, paper_stimulus
from repro.reporting import ascii_series, format_table

F_MOD = 8.0
CYCLES = 6


def run_transient(paper_dut):
    cfg = paper_bist_config()
    stim = paper_stimulus("multitone")
    sim = PLLTransientSimulator(paper_dut, stim.make_source(F_MOD))
    detector = PeakFrequencyDetector(
        inverter_delay=cfg.detector_inverter_delay,
        and_gate_delay=cfg.detector_and_delay,
    )
    sim.add_cycle_observer(detector.on_cycle)
    sim.run_until(CYCLES / F_MOD)
    return sim, detector


def test_fig08_peak_detector_transient(benchmark, report, paper_dut):
    sim, detector = benchmark.pedantic(
        run_transient, args=(paper_dut,), rounds=1, iterations=1
    )
    # Skip the first two modulation cycles (settling).
    t0 = 2.0 / F_MOD
    maxima = [e for e in detector.maxima() if e.time > t0]
    minima = [e for e in detector.minima() if e.time > t0]

    # True capacitor-node peaks in the analysed window.
    cap = sim.cap_trace
    rows = []
    errors = []
    for event in maxima:
        lo = event.time - 0.45 / F_MOD
        hi = event.time + 0.45 / F_MOD
        true_peak = cap.extremum(start=lo, stop=hi, maximum=True)
        err_deg = (event.time - true_peak.time) * F_MOD * 360.0
        errors.append(err_deg)
        rows.append([
            f"{event.time:.5f}",
            f"{true_peak.time:.5f}",
            f"{err_deg:+.2f}",
            f"{sim.pll.vco.frequency_of_voltage(true_peak.value):.3f}",
        ])
    table = format_table(
        ["MFREQ time (s)", "true vcap peak (s)", "error (deg of Tmod)",
         "freq at peak (Hz)"],
        rows,
        title="Figure 8 — MFREQ sampling vs true output-frequency maxima",
    )
    t, v = cap.as_arrays()
    mask = t > t0
    plot = ascii_series(
        [("vcap", t[mask], v[mask])],
        x_log=False,
        title="Figure 8 — loop-filter capacitor node (output frequency "
              "modulation)",
        y_label="V",
    )
    marks = "MFREQ events: " + ", ".join(f"{e.time:.5f}s" for e in maxima)
    report("fig08_peak_detector_transient", table + "\n\n" + plot + "\n" + marks)

    # One maximum and one minimum per modulation cycle.
    assert len(maxima) == CYCLES - 2
    assert len(minima) in (CYCLES - 2, CYCLES - 1)
    # MFREQ lands within a couple of reference cycles of the true peak.
    assert max(abs(e) for e in errors) < 5.0  # degrees of the mod period
