"""Sweep orchestration: the full transfer-function measurement.

:class:`TransferFunctionMonitor` is the user-facing entry point of the
library: given a PLL, a stimulus family and a sweep plan, it runs the
Table 2 sequence at every modulation frequency (Table 2 stage 5 is the
loop here), folds the counted results through eqs. (7)–(8) into a
:class:`~repro.analysis.bode.BodeResponse`, extracts the loop
parameters, and optionally applies on-chip limits.

A tone where the sequence fails outright (the peak detector starves,
lock is lost) is recorded as a failed tone rather than aborting the
sweep — a dead tone is diagnostic information for a structural test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bode import BodeResponse, log_frequency_grid
from repro.analysis.fitting import EstimatedParameters, estimate_second_order
from repro.core.architecture import BISTConfig
from repro.core.evaluation import evaluate_sweep
from repro.core.executor import (
    SweepExecutor,
    ToneCallback,
    ToneOutcome,
    executor_for,
)
from repro.core.limits import LimitReport, TestLimits
from repro.core.sequencer import ToneMeasurement, ToneTestSequencer
from repro.core.warm import LockStateCache, ToneMeasurementCache
from repro.engines import FARM_ENGINES, validate_engine
from repro.errors import ConfigurationError, MeasurementError
from repro.pll.config import ChargePumpPLL
from repro.stimulus.modulation import ModulatedStimulus

__all__ = ["SweepPlan", "SweepResult", "TransferFunctionMonitor"]


@dataclass(frozen=True)
class SweepPlan:
    """Which modulation frequencies to test, and which is the reference.

    The reference tone (eq. 7's ``ΔF_ref_max``) must sit well inside the
    loop bandwidth; by the paper's convention it is the lowest tone.
    """

    frequencies_hz: Tuple[float, ...]

    def __post_init__(self) -> None:
        freqs = tuple(sorted(float(f) for f in self.frequencies_hz))
        if len(freqs) < 2:
            raise ConfigurationError(
                f"a sweep needs at least 2 tones, got {len(freqs)}"
            )
        if freqs[0] <= 0.0:
            raise ConfigurationError("sweep frequencies must be positive")
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError("sweep frequencies must be distinct")
        object.__setattr__(self, "frequencies_hz", freqs)

    @property
    def reference_frequency(self) -> float:
        """The in-band reference tone (lowest frequency)."""
        return self.frequencies_hz[0]

    @classmethod
    def around(
        cls,
        fn_hz: float,
        decades_below: float = 1.0,
        decades_above: float = 0.9,
        points: int = 13,
    ) -> "SweepPlan":
        """Log-spaced sweep bracketing an expected natural frequency."""
        if fn_hz <= 0.0:
            raise ConfigurationError(f"fn_hz must be positive, got {fn_hz!r}")
        grid = log_frequency_grid(
            fn_hz / 10.0 ** decades_below,
            fn_hz * 10.0 ** decades_above,
            points,
        )
        return cls(tuple(float(f) for f in grid))


@dataclass
class SweepResult:
    """Everything produced by one full transfer-function measurement."""

    stimulus_label: str
    plan: SweepPlan
    measurements: List[ToneMeasurement]
    response: BodeResponse
    estimated: Optional[EstimatedParameters]
    failed_tones: Dict[float, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every planned tone produced a measurement."""
        return not self.failed_tones

    def summary(self) -> str:
        """Multi-line digest for logs and reports."""
        lines = [
            f"sweep [{self.stimulus_label}]: "
            f"{len(self.measurements)}/{len(self.plan.frequencies_hz)} tones"
        ]
        if self.estimated is not None:
            lines.append(f"  {self.estimated}")
        for f_mod, reason in sorted(self.failed_tones.items()):
            lines.append(f"  tone {f_mod:g} Hz FAILED: {reason}")
        return "\n".join(lines)


class TransferFunctionMonitor:
    """The complete on-chip closed-loop transfer-function BIST.

    Parameters
    ----------
    pll:
        Device under test.
    stimulus:
        Modulated-reference family (one of the
        :mod:`repro.stimulus.modulation` classes).
    config:
        Test-hardware parameters; defaults are sized for the paper's
        set-up.
    correct_filter_zero:
        Apply the capacitor-node correction (see
        :mod:`repro.core.evaluation`) using the *designed* loop-filter
        zero time constant, so the reported response is the paper's
        eq. (4) transfer function.  ``False`` reports the raw
        capacitor-referred response.
    cache:
        Optional externally owned :class:`~repro.core.warm.LockStateCache`
        to serve warm starts from.  Passing one cache to many monitors —
        the batch-screening pattern — lets a whole lot share settled
        states: each (stimulus, tone, device-physics) family settles
        once, every behaviourally identical device thereafter restores
        it.  ``None`` (default) gives the monitor a private cache.
    """

    def __init__(
        self,
        pll: ChargePumpPLL,
        stimulus: ModulatedStimulus,
        config: BISTConfig = BISTConfig(),
        correct_filter_zero: bool = True,
        cache: Optional[LockStateCache] = None,
    ) -> None:
        self.pll = pll
        self.stimulus = stimulus
        self.config = config
        self.correct_filter_zero = correct_filter_zero
        #: Warm-start cache of settled stage-0 states, shared by every
        #: sweep and single-tone measurement this monitor runs: once a
        #: tone has settled, re-measuring it restores the settled loop
        #: (bit-identically) instead of re-simulating the settle.
        self.lock_cache = cache if cache is not None else LockStateCache()
        self._sequencer = ToneTestSequencer(
            pll, stimulus, config, cache=self.lock_cache
        )

    def _zero_tau(self) -> Optional[float]:
        if not self.correct_filter_zero:
            return None
        lf = self.pll.loop_filter
        tau = getattr(lf, "tau2", None)
        if tau is None:
            tau = getattr(lf, "tau", None)
        if tau is None:
            raise ConfigurationError(
                f"{type(lf).__name__} exposes no zero time constant; "
                "construct the monitor with correct_filter_zero=False"
            )
        return float(tau)

    def measure_tone(self, f_mod: float) -> ToneMeasurement:
        """Single-tone measurement (Table 2 stages 0–4).

        Served warm from :attr:`lock_cache` when the tone's settled
        state is already known — bit-identical to a cold run.
        """
        return self._sequencer.run(f_mod)

    def measure_nominal_frequency(self, gate_cycles: int = 128) -> float:
        """Counted unmodulated baseline, memoised per ``gate_cycles``.

        Delegates to the monitor's single sequencer, so every caller
        (reports, screens, repeated sweeps) shares one settled baseline
        measurement per (PLL, stimulus, config, gate) instead of
        re-simulating a throwaway lock per call.
        """
        return self._sequencer.measure_nominal_frequency(gate_cycles)

    def run(
        self,
        plan: SweepPlan,
        n_workers: int = 1,
        executor: Optional[SweepExecutor] = None,
        settle: str = "fixed",
        on_outcome: Optional[ToneCallback] = None,
        engine: str = "scalar",
        measurement_cache=None,
    ) -> SweepResult:
        """Sweep every planned tone and evaluate eqs. (7)–(8).

        Tones are independent (each builds or warm-restores its own
        simulator), so the sweep accepts an executor: the default
        ``n_workers=1`` runs the serial loop, ``n_workers > 1`` fans the
        tones out over a batched process pool (degrading to serial, with
        a :class:`~repro.core.executor.ParallelFallbackWarning`, when
        only one CPU is visible), and an explicit ``executor`` overrides
        both.  Results are identical — bit for bit — whichever executor
        runs the tones; only the wall time changes.

        ``settle`` selects the stage-0 policy per tone: ``"fixed"``
        (Table 2's fixed wait, the default) or ``"adaptive"`` (lock
        detection with fixed-wait fallback; approximate — counted
        results match the fixed policy to counter resolution).  The
        monitor's :attr:`lock_cache` serves repeated fixed-settle tones
        warm.

        ``engine`` selects how stage 0 (the settle) is simulated:
        ``"scalar"`` (default) runs each tone's settle inside its own
        event loop as before; ``"vectorized"`` first advances every
        cacheable tone of the plan in lockstep on the NumPy settle farm
        (:func:`repro.pll.lot.premeasure_lot`), warming
        :attr:`lock_cache` — and, on the serial in-process path, keeps
        lanes in lockstep through stages 1–4 so the sweep's tones are
        answered from finished measurements — then runs the same
        sweep, warm;
        ``"closed_form"`` presettles through the analytic per-edge tier
        (:class:`~repro.sim.closed_form.ClosedFormLotSimulator`), which
        itself cascades ineligible lanes to the vectorized and scalar
        tiers; ``"auto"`` is the tiered policy — the same cascade, and
        where a named farm engine would refuse (an adaptive settle
        policy) it degrades to the scalar path instead of raising.
        Counted results are bit-identical on every engine (the farm's
        snapshot guarantee); only wall time changes.  The named farm
        engines require ``settle="fixed"`` — the adaptive policy's lock
        detection is inherently per-device scalar.

        ``measurement_cache`` optionally shares *finished* stage 1–4
        measurements across behaviourally identical sweeps (a
        :class:`~repro.core.warm.ToneMeasurementCache`, typically one
        per batch screen): when a lot's dies have equal physics, the
        first die measures each tone and the rest reuse the result —
        byte-identical reports, because a hit only differs in the
        comparison-excluded ``timing``.  Honoured on the in-process
        serial path with fixed settling; ignored (with fidelity, not
        silently wrong) by pool and custom executors.

        ``on_outcome`` streams per-tone completions to the caller as the
        executor produces them (see
        :data:`~repro.core.executor.ToneCallback`) — the sweep-job
        service forwards them to its subscribers so watchers see tone
        results mid-flight, not after the sweep.  A callback raising
        :class:`~repro.core.executor.SweepAborted` abandons the
        remaining tones; the caller keeps the outcomes it has seen and
        can later finish the plan and fold everything through
        :meth:`evaluate_outcomes` (the resume path).

        Raises
        ------
        MeasurementError
            Only if the *reference* tone fails — without the in-band
            reference no magnitude can be computed at all.
        """
        validate_engine(engine)
        if engine in ("vectorized", "closed_form") and settle != "fixed":
            # A named farm engine is an explicit ask; refusing beats
            # silently running something else.  ``auto`` is a policy,
            # not an ask — it degrades to scalar below instead.
            raise ConfigurationError(
                f"engine={engine!r} requires settle='fixed' "
                f"(got settle={settle!r})"
            )
        if engine in FARM_ENGINES and settle == "fixed":
            # Imported lazily: repro.pll.lot pulls in the NumPy settle
            # farm, which scalar-only callers never need.
            from repro.pll.lot import premeasure_lot

            # The farm can also carry stages 1-4, but only the serial
            # in-process executor consults a measurement cache — so the
            # measurement phase is worth running exactly when its
            # results have somewhere to land.  Callers without their
            # own cache get a private one scoped to this sweep.
            serial_dedup_ok = executor is None and n_workers == 1
            if serial_dedup_ok and measurement_cache is None:
                measurement_cache = ToneMeasurementCache()
            premeasure_lot(
                [(self.pll, self.stimulus, self.config,
                  plan.frequencies_hz)],
                self.lock_cache,
                measurement_cache if serial_dedup_ok else None,
                engine=engine,
            )
        custom_executor = executor is not None
        if executor is None:
            executor = executor_for(
                n_workers, n_tones=len(plan.frequencies_hz)
            )
        kwargs = {"settle": settle, "cache": self.lock_cache}
        if on_outcome is not None:
            # Only threaded through when given: third-party executors
            # predating the streaming seam keep working unchanged.
            kwargs["on_outcome"] = on_outcome
        if (
            measurement_cache is not None
            and not custom_executor
            and n_workers == 1
            and settle == "fixed"
        ):
            # Same compatibility discipline as on_outcome: the kwarg only
            # appears on the executors we built ourselves, and only on
            # the serial path where a live in-process cache can help.
            kwargs["measurement_cache"] = measurement_cache
        outcomes = executor.run_tones(
            self.pll,
            self.stimulus,
            self.config,
            plan.frequencies_hz,
            **kwargs,
        )
        return self.evaluate_outcomes(plan, outcomes)

    def evaluate_outcomes(
        self,
        plan: SweepPlan,
        outcomes: Sequence[ToneOutcome],
    ) -> SweepResult:
        """Fold plan-ordered tone outcomes through eqs. (7)–(8).

        This is the second half of :meth:`run`, split out so callers
        that collected the outcomes themselves — a streaming service
        assembling tones as they arrive, or a resumed job combining a
        partial run with the re-run remainder — produce a
        :class:`SweepResult` byte-identical to a one-shot ``run`` of
        the same plan.  ``outcomes`` must be in plan order (the
        executor contract); the reference tone is ``outcomes[0]``.

        Raises
        ------
        MeasurementError
            If the outcome count does not match the plan, or the
            *reference* tone failed.
        """
        if len(outcomes) != len(plan.frequencies_hz):
            raise MeasurementError(
                f"executor returned {len(outcomes)} outcomes for "
                f"{len(plan.frequencies_hz)} planned tones"
            )
        # The reference tone is identified by *position in the plan*
        # (index 0 — the plan sorts ascending and the reference is the
        # lowest tone), never by comparing f_mod values: executors
        # contract to return outcomes in plan order, and a tone whose
        # frequency round-trips through any transport must still be
        # recognised as the reference.
        measurements: List[ToneMeasurement] = []
        failed: Dict[float, str] = {}
        for index, outcome in enumerate(outcomes):
            is_reference = index == 0
            if outcome.failed:
                if is_reference:
                    raise MeasurementError(
                        f"in-band reference tone {outcome.f_mod:g} Hz "
                        f"failed: {outcome.error}"
                    )
                failed[outcome.f_mod] = outcome.error
                continue
            m = outcome.measurement
            # A non-positive peak deviation means the tone produced no
            # usable measurement (grossly defective or unsettled loop) —
            # that is a diagnostic outcome, recorded per tone rather
            # than fatal.
            if m.delta_f_hz <= 0.0:
                if is_reference:
                    raise MeasurementError(
                        f"in-band reference tone {m.f_mod:g} Hz measured a "
                        f"non-positive deviation ({m.delta_f_hz:.3g} Hz)"
                    )
                failed[m.f_mod] = (
                    f"non-positive peak deviation ({m.delta_f_hz:.3g} Hz)"
                )
                continue
            measurements.append(m)
        response = evaluate_sweep(
            measurements,
            label=self.stimulus.label,
            zero_correction_tau=self._zero_tau(),
        )
        estimated: Optional[EstimatedParameters]
        try:
            estimated = estimate_second_order(response)
        except MeasurementError:
            estimated = None
        return SweepResult(
            stimulus_label=self.stimulus.label,
            plan=plan,
            measurements=measurements,
            response=response,
            estimated=estimated,
            failed_tones=failed,
        )

    def run_and_check(
        self,
        plan: SweepPlan,
        limits: TestLimits,
        n_workers: int = 1,
        executor: Optional[SweepExecutor] = None,
        settle: str = "fixed",
        on_outcome: Optional[ToneCallback] = None,
        engine: str = "scalar",
        measurement_cache=None,
    ) -> Tuple[SweepResult, LimitReport]:
        """Sweep then compare against on-chip limits (go/no-go).

        A sweep from which no parameters could be extracted fails every
        configured band (NaN values), because "could not measure" is a
        reject, not a pass.
        """
        result = self.run(
            plan, n_workers=n_workers, executor=executor, settle=settle,
            on_outcome=on_outcome, engine=engine,
            measurement_cache=measurement_cache,
        )
        if result.estimated is None:
            nan = float("nan")
            estimated = EstimatedParameters(
                fn_hz=nan, zeta=nan, f_peak_hz=nan, peak_db=nan,
                f3db_hz=None, phase_at_peak_deg=None,
            )
            return result, limits.check(estimated)
        return result, limits.check(result.estimated)
