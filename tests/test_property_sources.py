"""Property-based tests: stimulus edge streams."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stimulus.waveforms import (
    ConstantFrequencySource,
    PiecewiseConstantFrequencySource,
    SinusoidalFMSource,
    SinusoidalPMSource,
)


class TestEdgeMonotonicity:
    @given(
        f0=st.floats(min_value=10.0, max_value=1e5),
        dev_frac=st.floats(min_value=0.0, max_value=0.9),
        fm_frac=st.floats(min_value=1e-3, max_value=0.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_sine_fm_edges_strictly_increasing(self, f0, dev_frac, fm_frac):
        src = SinusoidalFMSource(f0, deviation=dev_frac * f0,
                                 f_mod=fm_frac * f0)
        edges = [src.next_edge() for _ in range(100)]
        assert all(b > a for a, b in zip(edges, edges[1:]))

    @given(
        f0=st.floats(min_value=10.0, max_value=1e5),
        idx_frac=st.floats(min_value=0.0, max_value=0.9),
        fm_frac=st.floats(min_value=1e-3, max_value=0.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_pm_edges_strictly_increasing(self, f0, idx_frac, fm_frac):
        fm = fm_frac * f0
        peak_phase = idx_frac * f0 / fm
        src = SinusoidalPMSource(f0, peak_phase_rad=peak_phase, f_mod=fm)
        edges = [src.next_edge() for _ in range(100)]
        assert all(b > a for a, b in zip(edges, edges[1:]))


class TestPhaseEdgeConsistency:
    @given(
        f0=st.floats(min_value=100.0, max_value=1e4),
        dev_frac=st.floats(min_value=0.0, max_value=0.5),
        fm_frac=st.floats(min_value=1e-2, max_value=0.1),
    )
    @settings(max_examples=30, deadline=None)
    def test_phase_is_integer_at_edges(self, f0, dev_frac, fm_frac):
        """Each emitted edge lands exactly where the accumulated phase is
        a whole number of cycles."""
        src = SinusoidalFMSource(f0, dev_frac * f0, fm_frac * f0)
        for k in range(1, 30):
            t = src.next_edge()
            phase = src.phase_at(t)
            assert abs(phase - k) < 1e-6

    @given(
        schedule=st.lists(
            st.tuples(
                st.floats(min_value=100.0, max_value=2000.0),
                st.floats(min_value=1e-3, max_value=0.05),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_piecewise_phase_is_integer_at_edges(self, schedule):
        src = PiecewiseConstantFrequencySource(schedule)
        for k in range(1, 40):
            t = src.next_edge()
            assert abs(src.phase_at(t) - k) < 1e-6

    @given(f=st.floats(min_value=1.0, max_value=1e6),
           n=st.integers(min_value=1, max_value=50))
    def test_constant_source_exact_arithmetic(self, f, n):
        src = ConstantFrequencySource(f)
        t = None
        for _ in range(n):
            t = src.next_edge()
        assert t == n / f


class TestMeanFrequency:
    @given(
        f0=st.floats(min_value=500.0, max_value=2000.0),
        dev=st.floats(min_value=0.1, max_value=100.0),
        cycles=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_fm_preserves_mean_rate_over_whole_cycles(self, f0, dev, cycles):
        """Whole modulation cycles leave the average frequency at f0."""
        fm = 50.0
        src = SinusoidalFMSource(f0, dev, fm)
        n_edges = int(round(f0 / fm)) * cycles
        t_last = None
        for _ in range(n_edges):
            t_last = src.next_edge()
        expected = n_edges / f0
        # The edge nearest a whole-cycle boundary is within one period.
        assert abs(t_last - expected) < 1.5 / f0
