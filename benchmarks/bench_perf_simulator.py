"""Performance — event throughput and exactness of the transient core.

Not a paper figure: this guards the property that makes the whole
reproduction practical — the event-driven simulator processes tens of
thousands of PFD events per second of wall time with *zero* steady-state
drift (no time-stepping truncation), so the three-stimulus Figure 11/12
sweep stays a seconds-scale job.
"""

import numpy as np

from repro.pll.simulator import PLLTransientSimulator
from repro.presets import paper_pll
from repro.reporting import format_table
from repro.stimulus.waveforms import ConstantFrequencySource

SIM_SECONDS = 1.0


def run_locked_second(paper_dut):
    sim = PLLTransientSimulator(paper_dut, ConstantFrequencySource(1000.0))
    sim.run_until(SIM_SECONDS)
    return sim


def test_perf_simulator(benchmark, report, paper_dut):
    sim = benchmark.pedantic(
        run_locked_second, args=(paper_dut,), rounds=3, iterations=1
    )
    events = sim.result().events
    wall = benchmark.stats.stats.mean
    ref = sim.ref_edges.as_array()
    fb = sim.fb_edges.as_array()
    n = min(len(ref), len(fb))
    max_skew = float(np.abs(ref[:n] - fb[:n]).max())
    table = format_table(
        ["metric", "value"],
        [
            ["simulated time", f"{SIM_SECONDS:g} s"],
            ["events processed", events],
            ["wall time (mean)", f"{wall * 1e3:.1f} ms"],
            ["throughput", f"{events / wall / 1e3:.1f} k events/s"],
            ["real-time factor", f"{SIM_SECONDS / wall:.1f}x"],
            ["steady-state edge skew (max)", f"{max_skew:.3g} s"],
        ],
        title="Simulator performance and exactness (locked paper loop)",
    )
    report("perf_simulator", table)

    assert events > 2500  # ~3 events per reference cycle
    assert max_skew < 1e-12  # bit-exact lock, no drift
    assert events / wall > 5000  # sanity floor on throughput
