"""Property-based tests: segment algebra invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pll.charge_pump import Drive, DriveKind
from repro.pll.loop_filter import PassiveLagLeadFilter
from repro.sim.segments import (
    ConstantSegment,
    ExponentialSegment,
    RampSegment,
    crossing_time,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small_pos = st.floats(min_value=1e-9, max_value=1e3)
dt_values = st.floats(min_value=0.0, max_value=1e2)


class TestExponentialInvariants:
    @given(initial=finite, asymptote=finite, tau=small_pos, dt=dt_values)
    def test_value_bounded_by_endpoints(self, initial, asymptote, tau, dt):
        seg = ExponentialSegment(initial=initial, asymptote=asymptote, tau=tau)
        v = seg.value(dt)
        lo, hi = min(initial, asymptote), max(initial, asymptote)
        assert lo - 1e-6 <= v <= hi + 1e-6

    @given(initial=finite, asymptote=finite, tau=small_pos,
           dt1=dt_values, dt2=dt_values)
    def test_semigroup_property(self, initial, asymptote, tau, dt1, dt2):
        """Evolving dt1 then dt2 equals evolving dt1+dt2 directly."""
        seg = ExponentialSegment(initial=initial, asymptote=asymptote, tau=tau)
        mid = seg.value(dt1)
        seg2 = ExponentialSegment(initial=mid, asymptote=asymptote, tau=tau)
        direct = seg.value(dt1 + dt2)
        stepped = seg2.value(dt2)
        scale = max(1.0, abs(initial), abs(asymptote))
        assert abs(direct - stepped) <= 1e-9 * scale

    @given(initial=finite, asymptote=finite, tau=small_pos,
           dt1=dt_values, dt2=dt_values)
    def test_integral_additive(self, initial, asymptote, tau, dt1, dt2):
        seg = ExponentialSegment(initial=initial, asymptote=asymptote, tau=tau)
        mid = seg.value(dt1)
        seg2 = ExponentialSegment(initial=mid, asymptote=asymptote, tau=tau)
        direct = seg.integral(dt1 + dt2)
        split = seg.integral(dt1) + seg2.integral(dt2)
        scale = max(1.0, abs(initial), abs(asymptote)) * max(1.0, dt1 + dt2)
        assert abs(direct - split) <= 1e-8 * scale

    @given(initial=finite, asymptote=finite, tau=small_pos, dt=dt_values)
    def test_crossing_consistency(self, initial, asymptote, tau, dt):
        """If the segment reports a crossing, its value there matches."""
        seg = ExponentialSegment(initial=initial, asymptote=asymptote, tau=tau)
        target = seg.value(dt) if dt > 0 else initial
        t = crossing_time(seg, target)
        if t is not None:
            scale = max(1.0, abs(initial), abs(asymptote))
            assert abs(seg.value(t) - target) <= 1e-6 * scale


class TestRampInvariants:
    @given(initial=finite, slope=finite, dt1=dt_values, dt2=dt_values)
    def test_integral_additive(self, initial, slope, dt1, dt2):
        seg = RampSegment(initial=initial, slope=slope)
        mid = seg.value(dt1)
        seg2 = RampSegment(initial=mid, slope=slope)
        direct = seg.integral(dt1 + dt2)
        split = seg.integral(dt1) + seg2.integral(dt2)
        scale = max(1.0, abs(initial) + abs(slope) * (dt1 + dt2))
        scale *= max(1.0, dt1 + dt2)
        assert abs(direct - split) <= 1e-7 * scale

    @given(initial=finite, slope=finite, threshold=finite)
    def test_crossing_exact(self, initial, slope, threshold):
        seg = RampSegment(initial=initial, slope=slope)
        t = crossing_time(seg, threshold)
        if t is not None:
            scale = max(1.0, abs(threshold))
            assert abs(seg.value(t) - threshold) <= 1e-6 * scale


class TestFilterInvariants:
    @given(
        vc=st.floats(min_value=0.0, max_value=5.0),
        vd=st.sampled_from([0.0, 5.0]),
        dt=st.floats(min_value=1e-9, max_value=10.0),
    )
    def test_capacitor_moves_towards_drive(self, vc, vd, dt):
        lf = PassiveLagLeadFilter(r1=390e3, r2=33e3, c=470e-9)
        drive = Drive(DriveKind.VOLTAGE, vd)
        v_next = lf.state_segment(vc, drive).value(dt)
        if vd > vc:
            assert vc - 1e-12 <= v_next <= vd + 1e-12
        else:
            assert vd - 1e-12 <= v_next <= vc + 1e-12

    @given(
        vc=st.floats(min_value=0.0, max_value=5.0),
        dt=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_high_z_never_moves(self, vc, dt):
        lf = PassiveLagLeadFilter(r1=390e3, r2=33e3, c=470e-9)
        drive = Drive(DriveKind.HIGH_Z)
        assert lf.state_segment(vc, drive).value(dt) == vc
        assert lf.output_segment(vc, drive).value(dt) == vc
