"""Ablation — stimulus amplitude vs measurement linearity.

Section 4's only amplitude requirement: "the peak amplitude of the input
phase or frequency deviation does not exceed a value that would cause
the PLL components to enter a non-linear region of operation".  Where is
that edge, exactly?

The reproduction's answer is sharper than folklore: for *smooth* FM the
PFD forgives even transient phase excursions beyond its ±2π range
(frequency detection recovers within the modulation cycle), and the
binding limit is **charge-pump slew**: the drive can move the control
node at most ``(VDD/2)/(R1+R2)C`` volts per second, i.e. the output can
slew at most ``Ko·VDD/2/((R1+R2)C)`` Hz/s, while tracking the modulation
demands ``2π·f_mod·N·ΔF`` Hz/s.  The measured transfer function is
amplitude-independent until that ratio approaches one, then collapses.
"""

import math

import numpy as np

from repro.core.monitor import SweepPlan, TransferFunctionMonitor
from repro.presets import paper_bist_config, paper_pll
from repro.reporting import format_table
from repro.stimulus import SineFMStimulus

PLAN = SweepPlan((1.0, 4.0, 7.0, 9.0, 13.0))
DEVIATIONS = (0.5, 1.0, 4.0, 16.0, 32.0, 64.0, 128.0)
F_CHECK = 9.0  # the near-peak tone used for the stress numbers


def slew_available_hz_per_s(pll):
    """Maximum output-frequency slew the pump + filter can deliver."""
    lf = pll.loop_filter
    vdd = pll.pump.vdd
    return pll.vco.gain_hz_per_v * (vdd / 2.0) / ((lf.r1 + lf.r2) * lf.c)


def slew_required_hz_per_s(pll, deviation, f_mod):
    """Output slew needed to track the modulation peak."""
    return 2.0 * math.pi * f_mod * pll.n * deviation


def run_all():
    pll = paper_pll()
    cfg = paper_bist_config()
    out = {}
    for dev in DEVIATIONS:
        monitor = TransferFunctionMonitor(
            pll, SineFMStimulus(1000.0, dev), cfg
        )
        out[dev] = monitor.run(PLAN)
    return pll, out


def test_ablation_deviation(benchmark, report):
    pll, results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    available = slew_available_hz_per_s(pll)
    reference_peak = results[1.0].response.peak()[1]
    rows = []
    peaks = {}
    for dev, result in results.items():
        peak_db = result.response.peak()[1]
        peaks[dev] = peak_db
        required = slew_required_hz_per_s(pll, dev, F_CHECK)
        theta_e = (
            abs(1.0 / (1.0 + pll.open_loop_transfer(1j * 2 * math.pi * F_CHECK)))
            * 2.0 * math.pi * dev / F_CHECK
        )
        rows.append([
            f"±{dev:g}",
            f"{theta_e / (2 * math.pi):.2f}",
            f"{required / available:.2f}",
            f"{peak_db:+.2f}",
            f"{peak_db - reference_peak:+.2f}",
        ])
    table = format_table(
        ["deviation (Hz)", "θe peak @9 Hz (PFD ranges)",
         "slew required / available", "measured peak (dB)",
         "vs ±1 Hz reference (dB)"],
        rows,
        title=(
            "Ablation — measurement linearity vs stimulus amplitude "
            f"(pump slew limit {available/1e3:.1f} kHz/s at the output)"
        ),
    )
    report("ablation_deviation", table)

    # A transfer function is amplitude-independent while the pump can
    # slew (even with θe transiently beyond the PFD range)...
    assert abs(peaks[0.5] - peaks[1.0]) < 0.3
    assert abs(peaks[16.0] - peaks[1.0]) < 0.3
    assert abs(peaks[32.0] - peaks[1.0]) < 0.5
    # ...and collapses once tracking demands more slew than exists.
    assert peaks[128.0] < peaks[1.0] - 2.0
    ratio_at_collapse = slew_required_hz_per_s(pll, 64.0, F_CHECK) / available
    assert ratio_at_collapse > 1.0  # the collapse point is the slew edge
    assert peaks[64.0] < peaks[1.0] - 0.5
