"""Job model of the sweep-job service.

A *job* is one full Table 2 sweep campaign — a
:class:`~repro.core.monitor.SweepPlan` against one device — submitted
to the long-lived service instead of run one-shot from the CLI.  The
service owns the lifecycle::

    PENDING ──▶ RUNNING ──▶ DONE
        │           ├─────▶ FAILED      (reference tone died, device
        │           │                    raised, or the job timed out)
        │           └─────▶ CANCELLED   (cancel() mid-run: stops at the
        │                                next tone boundary)
        └─────────────────▶ CANCELLED   (cancel() while still queued)

Terminal states are absorbing; a finished job keeps its result, its
rendered report artefact and its event history for watchers that attach
late.

:class:`SweepJobRequest` is the Python-API submission form (carries real
component objects); :class:`SweepJobSpec` is the wire-protocol form (a
flat JSON-able description resolved against :mod:`repro.presets` by the
server, mirroring what the one-shot CLI commands build).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.architecture import BISTConfig
from repro.core.monitor import SweepPlan, SweepResult
from repro.engines import validate_engine
from repro.errors import ConfigurationError
from repro.pll.config import ChargePumpPLL
from repro.stimulus.modulation import ModulatedStimulus

__all__ = [
    "JobState",
    "TERMINAL_STATES",
    "SweepJobRequest",
    "SweepJobSpec",
    "SweepJob",
]


class JobState(str, enum.Enum):
    """Lifecycle state of one submitted sweep job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass(frozen=True)
class SweepJobRequest:
    """Everything one job needs: device, stimulus, plan, policy, budget.

    The measurement quadruple (``pll``, ``stimulus``, ``plan``,
    ``config``) is exactly what a one-shot
    :class:`~repro.core.monitor.TransferFunctionMonitor` takes, so a
    job's report is byte-identical to the equivalent one-shot run.

    ``timeout_s`` bounds the job's *running* wall time; on expiry the
    sweep stops at the next tone boundary and the job fails with a
    timeout diagnosis.  ``n_workers`` is passed to the monitor's
    executor selection per job (the ``REPRO_NUM_WORKERS`` environment
    override still wins).

    ``client_id`` and ``priority`` feed the service's fair dispatch:
    pending jobs are drained round-robin across client ids within each
    priority class (higher classes first), so one flooding client
    cannot starve the rest.  Both are optional — anonymous submissions
    share one round-robin slot at priority 0.
    """

    pll: ChargePumpPLL
    stimulus: ModulatedStimulus
    plan: SweepPlan
    config: BISTConfig = BISTConfig()
    settle: str = "fixed"
    n_workers: int = 1
    timeout_s: Optional[float] = None
    label: Optional[str] = None
    #: Fair-queue identity: jobs from the same client share one
    #: round-robin slot; ``None`` means the anonymous shared slot.
    client_id: Optional[str] = None
    #: Priority class; the scheduler drains higher classes first
    #: (ties broken round-robin per client, then submission order).
    priority: int = 0
    #: Stage-0 settle engine: ``"scalar"`` (per-tone event loops),
    #: ``"vectorized"`` (the plan presettles on the NumPy lockstep farm,
    #: warming the service's shared cache; bit-identical results),
    #: ``"closed_form"`` (the tiered analytic per-edge farm) or
    #: ``"auto"`` (resolve closed_form → vectorized → scalar per lane).
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s!r}"
            )
        if self.settle not in ("fixed", "adaptive"):
            raise ConfigurationError(
                f"settle must be 'fixed' or 'adaptive', got {self.settle!r}"
            )
        if self.client_id is not None and (
            not isinstance(self.client_id, str) or not self.client_id
        ):
            raise ConfigurationError(
                f"client_id must be a non-empty string or None, "
                f"got {self.client_id!r}"
            )
        if isinstance(self.priority, bool) or not isinstance(
            self.priority, int
        ):
            raise ConfigurationError(
                f"priority must be an int, got {self.priority!r}"
            )
        validate_engine(self.engine)
        if (self.engine in ("vectorized", "closed_form")
                and self.settle != "fixed"):
            # "auto" is allowed with any settle policy: it degrades to
            # the scalar path instead of refusing (monitor semantics).
            raise ConfigurationError(
                f"engine={self.engine!r} requires settle='fixed' "
                f"(got settle={self.settle!r})"
            )


@dataclass(frozen=True)
class SweepJobSpec:
    """Wire-protocol job description (flat, JSON-able).

    Resolved into a :class:`SweepJobRequest` against the reconstructed
    Table 3 presets — the same vocabulary the one-shot CLI commands
    speak (``--points``, ``--stimulus``, ``--fault``, ``--nonlinear``,
    ``--settle``, ``--workers``).
    """

    points: int = 12
    stimulus: str = "multitone"
    fault: Optional[str] = None
    nonlinear: bool = False
    settle: str = "fixed"
    n_workers: int = 1
    timeout_s: Optional[float] = None
    label: Optional[str] = None
    engine: str = "scalar"
    client_id: Optional[str] = None
    priority: int = 0

    def to_dict(self) -> dict:
        """JSON-able payload for the submit request."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepJobSpec":
        """Parse a submit payload, rejecting unknown fields loudly."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"job spec must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown job-spec field(s): {', '.join(unknown)}"
            )
        return cls(**data)


@dataclass
class SweepJob:
    """One submitted job and everything the service knows about it.

    Mutable by the service only; everything here is read-only to
    watchers.  Timestamps come from the service clock
    (:func:`time.monotonic`), so durations are robust against wall-clock
    steps; they are session-relative, not epochs.
    """

    job_id: str
    request: SweepJobRequest
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Human-readable failure/cancellation diagnosis.
    error: Optional[str] = None
    #: The evaluated sweep (DONE jobs only).
    result: Optional[SweepResult] = None
    #: Rendered markdown artefact: a full device report for DONE jobs,
    #: a failure stub otherwise (mirroring the batch screen's
    #: one-artefact-per-device contract).
    report: Optional[str] = None
    #: Plan indices streamed so far, in emission (= plan) order.
    streamed_indices: List[int] = field(default_factory=list)
    #: How many streamed tones were served warm from the lock cache.
    warm_tones: int = 0
    #: How many streamed tones failed (captured as data, not a crash).
    failed_tones: int = 0

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    @property
    def running_s(self) -> Optional[float]:
        """Running wall time (None until the job has started)."""
        if self.started_at is None:
            return None
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def snapshot(self) -> dict:
        """JSON-able status row for ``/status`` listings and events."""
        return {
            "job_id": self.job_id,
            "label": self.request.label,
            "client_id": self.request.client_id,
            "priority": self.request.priority,
            "state": self.state.value,
            "tones_planned": len(self.request.plan.frequencies_hz),
            "tones_streamed": len(self.streamed_indices),
            "warm_tones": self.warm_tones,
            "failed_tones": self.failed_tones,
            "error": self.error,
            "running_s": self.running_s,
        }
