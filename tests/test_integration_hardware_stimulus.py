"""Integration: hardware-faithful DCO edges through the whole BIST.

The default multi-tone stimulus uses idealised dwell boundaries; the
``hardware_edges`` variant drives the loop from the actual ring-counter
model (modulus hops only at output edges, every period an integer number
of master ticks).  The two must agree — the residual difference IS the
hardware quantisation the paper's Section 3 argues is negligible.
"""

import numpy as np
import pytest

from repro.core.monitor import SweepPlan, TransferFunctionMonitor
from repro.presets import paper_bist_config, paper_dco, paper_pll
from repro.stimulus import MultiToneFSKStimulus

PLAN = SweepPlan((1.0, 4.0, 7.0, 9.0, 13.0, 25.0))


@pytest.fixture(scope="module")
def ideal_result():
    stim = MultiToneFSKStimulus(1000.0, 1.0, steps=10, dco=paper_dco())
    return TransferFunctionMonitor(
        paper_pll(), stim, paper_bist_config()
    ).run(PLAN)


@pytest.fixture(scope="module")
def hardware_result():
    stim = MultiToneFSKStimulus(
        1000.0, 1.0, steps=10, dco=paper_dco(), hardware_edges=True
    )
    return TransferFunctionMonitor(
        paper_pll(), stim, paper_bist_config()
    ).run(PLAN)


class TestHardwareEdges:
    def test_both_sweeps_complete(self, ideal_result, hardware_result):
        assert ideal_result.complete
        assert hardware_result.complete

    def test_magnitudes_agree(self, ideal_result, hardware_result):
        diff = np.abs(
            ideal_result.response.magnitude_db
            - hardware_result.response.magnitude_db
        )
        assert diff.max() < 0.5

    def test_phases_agree(self, ideal_result, hardware_result):
        # Edge-aligned dwell hand-over shifts the effective modulation
        # phase by a fraction of a dwell (36 deg per dwell at 10 steps),
        # so the agreement bound is a third of a dwell.
        diff = np.abs(
            ideal_result.response.phase_deg
            - hardware_result.response.phase_deg
        )
        assert diff.max() < 12.0

    def test_parameters_agree(self, ideal_result, hardware_result):
        est_i = ideal_result.estimated
        est_h = hardware_result.estimated
        assert est_i is not None and est_h is not None
        assert est_h.fn_hz == pytest.approx(est_i.fn_hz, rel=0.05)
        assert est_h.zeta == pytest.approx(est_i.zeta, rel=0.15)
