"""Long-lived sweep-job service: async queue, streaming tones, warm disk cache.

The paper's monitor answers "measure this device once"; a production
test floor asks "keep measuring devices as they arrive".  This package
is that front-end:

* :mod:`repro.service.jobs` — job model: request/spec forms and the
  PENDING → RUNNING → DONE/FAILED/CANCELLED lifecycle.
* :mod:`repro.service.events` — the per-job event stream (admission,
  start, every finished tone in plan order, terminal verdict).
* :mod:`repro.service.service` — :class:`SweepJobService`: bounded
  queue, width-1 scheduler over the existing executor layer, one shared
  :class:`~repro.core.warm.LockStateCache` spilled to disk between
  sessions, cancellation / per-job timeouts / stats.
* :mod:`repro.service.protocol` — the JSON-lines wire protocol and the
  spec → request resolution against the Table 3 presets.
* :mod:`repro.service.server` — the unix-socket server
  (``python -m repro serve``).
* :mod:`repro.service.client` — the blocking client the ``submit`` /
  ``watch`` / ``status`` commands use.

The contract that makes the service trustworthy: a job's report is
**byte-identical** to the equivalent one-shot
:meth:`~repro.core.monitor.TransferFunctionMonitor.run` — streaming,
queueing and warm restores change *when* results arrive, never *what*
they are.
"""

from repro.service.client import ServiceClient
from repro.service.events import (
    EVENT_ACCEPTED,
    EVENT_CANCELLED,
    EVENT_DONE,
    EVENT_FAILED,
    EVENT_STARTED,
    EVENT_TONE,
    TERMINAL_EVENTS,
    JobEvent,
)
from repro.service.jobs import (
    TERMINAL_STATES,
    JobState,
    SweepJob,
    SweepJobRequest,
    SweepJobSpec,
)
from repro.service.server import SweepJobServer
from repro.service.service import SweepJobService

__all__ = [
    "JobState",
    "TERMINAL_STATES",
    "SweepJob",
    "SweepJobRequest",
    "SweepJobSpec",
    "JobEvent",
    "EVENT_ACCEPTED",
    "EVENT_STARTED",
    "EVENT_TONE",
    "EVENT_DONE",
    "EVENT_FAILED",
    "EVENT_CANCELLED",
    "TERMINAL_EVENTS",
    "SweepJobService",
    "SweepJobServer",
    "ServiceClient",
]
