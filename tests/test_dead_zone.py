"""End-to-end behaviour of the charge-pump dead-zone defect.

A pump turn-on delay swallows PFD pulses narrower than itself — in lock
the correction pulses *are* that narrow, so the loop drifts unchecked
inside the dead band and wanders (the classic dead-zone limit cycle).
These tests verify the causal model produces that canonical behaviour
and that the BIST measurement sees it.
"""

import numpy as np
import pytest

from repro.pll.faults import Fault, FaultKind, apply_fault
from repro.pll.simulator import PLLTransientSimulator
from repro.presets import paper_pll
from repro.stimulus.waveforms import ConstantFrequencySource


def wander_band_seconds(pll, duration=2.0):
    """Peak-to-peak steady-state edge skew between ref and fb."""
    sim = PLLTransientSimulator(pll, ConstantFrequencySource(1000.0))
    sim.run_until(duration)
    ref = sim.ref_edges.as_array()
    fb = sim.fb_edges.as_array()
    n = min(len(ref), len(fb))
    skew = (fb[:n] - ref[:n])[n // 2:]
    return float(skew.max() - skew.min())


class TestDeadZoneBehaviour:
    def test_healthy_loop_has_no_wander(self):
        assert wander_band_seconds(paper_pll()) < 1e-9

    def test_dead_zone_creates_wander(self):
        faulty = apply_fault(
            paper_pll(), Fault(FaultKind.CP_DEAD_ZONE, 50e-6)
        )
        band = wander_band_seconds(faulty)
        # The loop wanders on the order of the dead band.
        assert band > 10e-6

    def test_wander_exceeds_dead_band(self):
        """The limit cycle coasts *through* the band and overshoots:
        its amplitude is at least the dead band itself (and in this
        loop is dominated by the coasting overshoot, so it does not
        shrink proportionally for small bands)."""
        for dz in (20e-6, 50e-6):
            faulty = apply_fault(
                paper_pll(), Fault(FaultKind.CP_DEAD_ZONE, dz)
            )
            assert wander_band_seconds(faulty) > dz

    def test_pulses_wider_than_dead_band_still_act(self):
        """The defect is a delay, not a disconnect: large errors are
        corrected (acquisition still works)."""
        faulty = apply_fault(
            paper_pll(), Fault(FaultKind.CP_DEAD_ZONE, 50e-6)
        )
        sim = PLLTransientSimulator(
            faulty, ConstantFrequencySource(1000.0),
            initial_control_voltage=2.7,  # ~240 Hz off
        )
        sim.run_until(1.0)
        assert sim.output_frequency_smoothed == pytest.approx(
            5000.0, abs=pll_dead_band_hz(faulty)
        )


def pll_dead_band_hz(pll) -> float:
    """Frequency slack the dead zone permits: the loop stops correcting
    once per-cycle skew < turn_on_delay, so the frequency can sit
    anywhere the skew drift rate allows (bounded here generously)."""
    return 60.0
