"""Warm-start support: a cache of settled loop states.

Table 2's stage (0) — "allow the loop to settle" — dominates the cost of
a tone measurement: for the paper's sweep roughly four modulation
periods of closed-loop simulation (~79 % of the per-tone events) are
spent reaching steady state before the phase counter is even armed.
That work is pure replay whenever the same (PLL, stimulus, tone) has
been settled before: the loop is deterministic, so the settled state is
a function of the configuration alone.

:class:`LockStateCache` memoises those settled states as
:class:`~repro.pll.simulator.SimulatorSnapshot` records keyed by the
tone parameters.  A hit lets the sequencer *restore* instead of
re-simulating the settle, which is bit-identical to the cold run by the
snapshot guarantee — measurements from a warm run equal the cold run's
tick for tick.  Typical uses: batch screening (the same sweep plan run
against many devices re-settles the same tones), re-measurement of a
tone at a different ``max_wait_cycles``, and the cold/warm benchmark.

Because entries are keyed by the device's *physics signature* rather
than its name (see
:meth:`~repro.pll.config.ChargePumpPLL.physics_signature`), one cache
shared across a whole lot settles each (stimulus, tone, configuration)
family exactly once — every same-configuration die, and every repeat of
the same injected fault in a fault-library screen, restores the first
die's settled state.  :meth:`export` and :meth:`merge` move entries
across process boundaries: a batch screen ships the parent cache's
entries to pool workers inside the chunk payload and merges whatever
the workers settled back into the parent on return.

The cache is a bounded LRU so long screening campaigns cannot grow
memory without limit; snapshots are a few hundred bytes each.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.pll.simulator import SimulatorSnapshot

__all__ = ["LockStateCache", "CacheEntries"]

#: Picklable transport form of a cache's contents: ``(key, snapshot)``
#: pairs in least-recently-used-first order.
CacheEntries = Tuple[Tuple[Hashable, SimulatorSnapshot], ...]


class LockStateCache:
    """Bounded LRU cache of settled-loop snapshots.

    Keys are arbitrary hashable tuples built by the sequencer from
    everything that determines the settled state: the PLL physics
    signature, the stimulus parameters (nominal frequency, deviation,
    tone frequency), the settle duration and the recording level.
    Values are :class:`~repro.pll.simulator.SimulatorSnapshot` records
    captured at the end of stage (0).

    Parameters
    ----------
    max_entries:
        Capacity; least-recently-used entries are evicted beyond it.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._store: "OrderedDict[Hashable, SimulatorSnapshot]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._merged = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not touch recency or the counters."""
        return key in self._store

    def get(self, key: Hashable) -> Optional[SimulatorSnapshot]:
        """Return the cached snapshot for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's recency.
        """
        snap = self._store.get(key)
        if snap is None:
            self._misses += 1
            return None
        self._store.move_to_end(key)
        self._hits += 1
        return snap

    def put(self, key: Hashable, snap: SimulatorSnapshot) -> None:
        """Store ``snap`` under ``key``, evicting the LRU entry if full."""
        self._store[key] = snap
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self._evictions += 1

    def export(self) -> CacheEntries:
        """Every ``(key, snapshot)`` pair, LRU-first (picklable).

        The export is a value copy of the cache's *contents* (snapshots
        are immutable), sized to cross a process boundary inside a chunk
        payload; merging it into an empty cache reproduces this cache's
        entries and recency order.  Counters are not exported — they
        describe this cache's history, not its contents.
        """
        return tuple(self._store.items())

    def merge(
        self, entries: Iterable[Tuple[Hashable, SimulatorSnapshot]]
    ) -> int:
        """Adopt settled states discovered elsewhere; return the number added.

        ``entries`` is typically another cache's :meth:`export` — e.g.
        what a pool worker settled while screening its share of a lot.
        Merge semantics: **existing entries win**.  Both sides of a key
        collision hold the *same* settled state (the settle is a pure
        function of the key by the snapshot guarantee), so overwriting
        could only churn recency; keeping the incumbent makes merging
        idempotent and order-independent.  Newly adopted entries count
        toward capacity and may evict LRU incumbents, exactly like
        :meth:`put`.
        """
        added = 0
        for key, snap in entries:
            if key in self._store:
                continue
            self.put(key, snap)
            added += 1
        self._merged += added
        return added

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        self._store.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._merged = 0

    @property
    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` counters since construction or clear."""
        return (self._hits, self._misses)

    @property
    def stats_detail(self) -> dict:
        """Full counter set: hits, misses, evictions, merged entries.

        ``merged`` counts entries adopted through :meth:`merge` (worker
        discoveries folded into a parent cache); ``evictions`` counts
        LRU drops from either :meth:`put` or :meth:`merge`.
        """
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "merged": self._merged,
            "entries": len(self._store),
            "capacity": self.max_entries,
        }

    def __repr__(self) -> str:
        return (
            f"LockStateCache(entries={len(self._store)}/{self.max_entries}, "
            f"hits={self._hits}, misses={self._misses}, "
            f"evictions={self._evictions}, merged={self._merged})"
        )
