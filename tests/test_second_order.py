"""Second-order theory: peaking, bandwidth, step responses."""

import math

import numpy as np
import pytest

from repro.analysis.second_order import (
    SecondOrderParameters,
    closed_loop_standard,
    closed_loop_with_zero,
    damping_from_peaking_db,
    peaking_db_with_zero,
)
from repro.errors import ConfigurationError, ConvergenceError

WN = 2 * math.pi * 8.743
ZETA = 0.426


class TestResponses:
    def test_with_zero_dc_unity(self):
        h = closed_loop_with_zero(WN, ZETA, 1e-6)
        assert abs(h) == pytest.approx(1.0, rel=1e-9)

    def test_standard_dc_unity(self):
        h = closed_loop_standard(WN, ZETA, 1e-6)
        assert abs(h) == pytest.approx(1.0, rel=1e-9)

    def test_with_zero_rolls_off_20db_per_decade(self):
        # One zero against two poles leaves -20 dB/dec asymptotically.
        h1 = abs(closed_loop_with_zero(WN, ZETA, 1e4))
        h2 = abs(closed_loop_with_zero(WN, ZETA, 1e5))
        assert h1 / h2 == pytest.approx(10.0, rel=0.01)

    def test_standard_rolls_off_40db_per_decade(self):
        h1 = abs(closed_loop_standard(WN, ZETA, 1e4))
        h2 = abs(closed_loop_standard(WN, ZETA, 1e5))
        assert h1 / h2 == pytest.approx(100.0, rel=0.01)

    def test_zero_raises_peak(self):
        w = np.logspace(0, 3, 2000)
        peak_zero = np.abs(closed_loop_with_zero(WN, ZETA, w)).max()
        peak_std = np.abs(closed_loop_standard(WN, ZETA, w)).max()
        assert peak_zero > peak_std

    def test_array_evaluation(self):
        w = np.array([1.0, 10.0, 100.0])
        h = closed_loop_with_zero(WN, ZETA, w)
        assert h.shape == (3,)


class TestPeaking:
    def test_peaking_matches_grid_search(self):
        w = np.logspace(-1, 4, 200000)
        grid = 20 * np.log10(np.abs(closed_loop_with_zero(WN, ZETA, w))).max()
        assert peaking_db_with_zero(ZETA) == pytest.approx(grid, abs=1e-4)

    def test_peaking_decreases_with_damping(self):
        peaks = [peaking_db_with_zero(z) for z in (0.2, 0.5, 1.0, 2.0, 5.0)]
        assert all(a > b for a, b in zip(peaks, peaks[1:]))

    def test_heavy_damping_still_peaks(self):
        # Unlike the no-zero system, the with-zero loop peaks for all zeta.
        assert peaking_db_with_zero(2.0) > 0.0

    def test_rejects_nonpositive_zeta(self):
        with pytest.raises(ConfigurationError):
            peaking_db_with_zero(0.0)


class TestDampingInversion:
    def test_roundtrip(self):
        for zeta in (0.2, 0.426, 0.7, 1.0, 3.0):
            peak = peaking_db_with_zero(zeta)
            assert damping_from_peaking_db(peak) == pytest.approx(zeta, rel=1e-6)

    def test_rejects_nonpositive_peaking(self):
        with pytest.raises(ConvergenceError):
            damping_from_peaking_db(0.0)

    def test_rejects_unattainable_peaking(self):
        with pytest.raises(ConvergenceError):
            damping_from_peaking_db(60.0)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SecondOrderParameters(wn=0.0, zeta=0.5)
        with pytest.raises(ConfigurationError):
            SecondOrderParameters(wn=1.0, zeta=0.0)

    def test_fn_hz(self):
        p = SecondOrderParameters(wn=2 * math.pi * 10.0, zeta=0.5)
        assert p.fn_hz == pytest.approx(10.0)

    def test_peak_frequency_matches_grid(self):
        p = SecondOrderParameters(WN, ZETA)
        w = np.logspace(0, 4, 300000)
        mags = np.abs(closed_loop_with_zero(WN, ZETA, w))
        w_peak = w[int(np.argmax(mags))]
        assert p.peak_frequency == pytest.approx(w_peak, rel=1e-3)

    def test_peak_frequency_below_wn(self):
        # For the with-zero loop the peak sits below the natural frequency.
        p = SecondOrderParameters(WN, ZETA)
        assert p.peak_frequency < p.wn

    def test_w3db_gardner_formula(self):
        p = SecondOrderParameters(WN, ZETA)
        b = 1 + 2 * ZETA ** 2
        assert p.w3db == pytest.approx(WN * math.sqrt(b + math.sqrt(b * b + 1)))

    def test_w3db_is_actual_crossing(self):
        p = SecondOrderParameters(WN, ZETA)
        assert abs(p.response(p.w3db)) == pytest.approx(
            1.0 / math.sqrt(2.0), rel=1e-9
        )

    def test_str(self):
        assert "fn=" in str(SecondOrderParameters(WN, ZETA))


class TestStepResponse:
    @pytest.mark.parametrize("zeta", [0.3, 0.426, 1.0, 2.0])
    def test_starts_at_zero_settles_at_one(self, zeta):
        p = SecondOrderParameters(WN, zeta)
        t = np.linspace(0.0, 50.0 / WN * 2 * math.pi, 2000)
        y = p.phase_step_response(t)
        assert y[0] == pytest.approx(0.0, abs=1e-9)
        assert y[-1] == pytest.approx(1.0, abs=1e-3)

    def test_underdamped_overshoots(self):
        p = SecondOrderParameters(WN, 0.426)
        t = np.linspace(0.0, 1.0, 5000)
        assert p.phase_step_response(t).max() > 1.05

    def test_overdamped_zero_feedthrough_overshoot(self):
        # The zero makes even heavy damping overshoot slightly.
        p = SecondOrderParameters(WN, 2.0)
        t = np.linspace(0.0, 2.0, 5000)
        y = p.phase_step_response(t)
        assert y.max() > 1.0

    def test_settling_rate_scales_with_sigma(self):
        fast = SecondOrderParameters(10 * WN, 0.426)
        slow = SecondOrderParameters(WN, 0.426)
        t = 0.05
        err_fast = abs(1.0 - float(fast.phase_step_response(np.array([t]))[0]))
        err_slow = abs(1.0 - float(slow.phase_step_response(np.array([t]))[0]))
        assert err_fast < err_slow

    def test_matches_frequency_domain_via_final_value(self):
        # DC gain 1 <-> step settles to 1 for all branches.
        for zeta in (0.9999, 1.0, 1.0001):
            p = SecondOrderParameters(WN, zeta)
            y_end = float(p.phase_step_response(np.array([100.0 / WN]))[0])
            assert y_end == pytest.approx(1.0, abs=1e-4)
