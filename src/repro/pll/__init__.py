"""Behavioral charge-pump PLL substrate.

Implements every block of Figure 2 of the paper — phase-frequency
detector, charge pump (current-steering and 4046-style rail-driver
variants), loop filter (the passive lag-lead of Figure 9 and the classic
series-RC charge-pump filter), VCO and dividers — plus the assembled
closed-loop transient simulator, a 74HCT4046A-flavoured device model and
a macro-level fault injector.
"""

from repro.pll.pfd import PFDCycle, PFDState, PhaseFrequencyDetector
from repro.pll.charge_pump import (
    Drive,
    DriveKind,
    ChargePump,
    CurrentChargePump,
    RailDriverChargePump,
)
from repro.pll.loop_filter import (
    LoopFilter,
    PassiveLagLeadFilter,
    SeriesRCFilter,
)
from repro.pll.vco import VCO
from repro.pll.dividers import EdgeDivider, RingCounterDivider
from repro.pll.config import ChargePumpPLL
from repro.pll.simulator import PLLTransientSimulator, RecordLevel, TransientResult
from repro.pll.hct4046 import HCT4046Config, make_hct4046_pll
from repro.pll.faults import (
    Fault,
    FaultKind,
    apply_fault,
    FAULT_LIBRARY,
    fault_library,
)

__all__ = [
    "PFDCycle",
    "PFDState",
    "PhaseFrequencyDetector",
    "Drive",
    "DriveKind",
    "ChargePump",
    "CurrentChargePump",
    "RailDriverChargePump",
    "LoopFilter",
    "PassiveLagLeadFilter",
    "SeriesRCFilter",
    "VCO",
    "EdgeDivider",
    "RingCounterDivider",
    "ChargePumpPLL",
    "PLLTransientSimulator",
    "RecordLevel",
    "TransientResult",
    "HCT4046Config",
    "make_hct4046_pll",
    "Fault",
    "FaultKind",
    "apply_fault",
    "FAULT_LIBRARY",
    "fault_library",
]
