"""The three stimulus classes of Figures 11-12."""

import math

import numpy as np
import pytest

from repro.errors import StimulusError
from repro.sim.signals import edges_to_frequency
from repro.stimulus.dco import DCO, DCOProgrammedSource
from repro.stimulus.modulation import (
    MultiToneFSKStimulus,
    SineFMStimulus,
    TwoToneFSKStimulus,
)
from repro.stimulus.waveforms import (
    PiecewiseConstantFrequencySource,
    SinusoidalFMSource,
)


class TestValidation:
    def test_deviation_bounds(self):
        with pytest.raises(StimulusError):
            SineFMStimulus(1000.0, 0.0)
        with pytest.raises(StimulusError):
            SineFMStimulus(1000.0, 1000.0)
        with pytest.raises(StimulusError):
            SineFMStimulus(0.0, 1.0)

    def test_steps_minimum(self):
        with pytest.raises(StimulusError):
            MultiToneFSKStimulus(1000.0, 1.0, steps=1)

    def test_hardware_edges_need_dco(self):
        with pytest.raises(StimulusError):
            MultiToneFSKStimulus(1000.0, 1.0, steps=10, hardware_edges=True)

    def test_infeasible_dco_caught_at_construction(self):
        with pytest.raises(StimulusError):
            MultiToneFSKStimulus(1e6, 1000.0, steps=10, dco=DCO(100e6))


class TestSineFM:
    def test_source_type(self):
        stim = SineFMStimulus(1000.0, 1.0)
        assert isinstance(stim.make_source(8.0), SinusoidalFMSource)
        assert stim.label == "Pure Sine FM"

    def test_peak_time_quarter_period(self):
        stim = SineFMStimulus(1000.0, 1.0)
        assert stim.modulation_peak_time(8.0) == pytest.approx(0.03125)
        assert stim.modulation_peak_time(8.0, index=3) == pytest.approx(
            (0.25 + 3) / 8.0
        )

    def test_ideal_frequency(self):
        stim = SineFMStimulus(1000.0, 2.0)
        t_peak = stim.modulation_peak_time(4.0)
        assert stim.ideal_frequency(4.0, t_peak) == pytest.approx(1002.0)


class TestMultiTone:
    def test_labels(self):
        assert "10 steps" in MultiToneFSKStimulus(1e3, 1.0, steps=10).label
        assert TwoToneFSKStimulus(1e3, 1.0).label == "Two Tone FSK"

    def test_ideal_tone_frequencies_sample_sine(self):
        stim = MultiToneFSKStimulus(1000.0, 1.0, steps=4)
        tones = stim.tone_frequencies()
        expected = [
            1000.0 + math.sin(2 * math.pi * (i + 0.5) / 4) for i in range(4)
        ]
        assert tones == pytest.approx(expected)

    def test_dco_tones_snap_to_grid(self):
        dco = DCO(10e6)
        stim = MultiToneFSKStimulus(1000.0, 1.0, steps=10, dco=dco)
        for tone in stim.tone_frequencies():
            m = round(10e6 / tone)
            assert tone == pytest.approx(10e6 / m)

    def test_schedule_dwell(self):
        stim = MultiToneFSKStimulus(1000.0, 1.0, steps=10)
        sched = stim.schedule(f_mod=8.0)
        assert len(sched) == 10
        for __, dwell in sched:
            assert dwell == pytest.approx(1.0 / 80.0)

    def test_schedule_rejects_bad_fmod(self):
        with pytest.raises(StimulusError):
            MultiToneFSKStimulus(1000.0, 1.0).schedule(0.0)

    def test_ideal_source_type(self):
        stim = MultiToneFSKStimulus(1000.0, 1.0, steps=10)
        assert isinstance(
            stim.make_source(8.0), PiecewiseConstantFrequencySource
        )

    def test_hardware_source_type(self):
        stim = MultiToneFSKStimulus(
            1000.0, 1.0, steps=10, dco=DCO(10e6), hardware_edges=True
        )
        assert isinstance(stim.make_source(8.0), DCOProgrammedSource)

    def test_mean_frequency_unchanged(self):
        stim = MultiToneFSKStimulus(1000.0, 1.0, steps=10)
        src = stim.make_source(10.0)
        edges = [src.next_edge() for _ in range(1000)]
        assert edges[-1] == pytest.approx(1.0, rel=1e-3)

    def test_fsk_approximates_sine_envelope(self):
        """Ten-step FSK frequency trajectory stays within half a step of
        the ideal sine it samples (the Section 3 filtering argument)."""
        stim = MultiToneFSKStimulus(1000.0, 1.0, steps=10)
        src = stim.make_source(5.0)
        edges = [src.next_edge() for _ in range(2000)]
        mids, freqs = edges_to_frequency(edges)
        ideal = np.array([stim.ideal_frequency(5.0, t) for t in mids])
        assert np.abs(freqs - ideal).max() < 0.4  # < half the tone spacing


class TestTwoTone:
    def test_two_tones_at_extremes(self):
        stim = TwoToneFSKStimulus(1000.0, 1.0)
        tones = stim.tone_frequencies()
        assert sorted(tones) == pytest.approx([999.0, 1001.0])

    def test_hardware_two_tone(self):
        stim = TwoToneFSKStimulus(1000.0, 1.0, dco=DCO(10e6),
                                  hardware_edges=True)
        src = stim.make_source(8.0)
        edges = [src.next_edge() for _ in range(500)]
        __, freqs = edges_to_frequency(edges)
        assert freqs.max() == pytest.approx(1001.0, abs=0.2)
        assert freqs.min() == pytest.approx(999.0, abs=0.2)
