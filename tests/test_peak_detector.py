"""The Figure 7 peak frequency detector."""

import math

import pytest

from repro.core.peak_detector import PeakEvent, PeakFrequencyDetector
from repro.errors import ConfigurationError
from repro.pll.pfd import PFDCycle


def cycle(t, skew, reset_delay=20e-9):
    """A PFD cycle at time t with given edge skew (positive = ref leads)."""
    if skew >= 0.0:
        up, dn = t, t + skew
    else:
        up, dn = t - skew, t
    return PFDCycle(up_rise=up, dn_rise=dn,
                    reset_time=max(up, dn) + reset_delay)


class TestConfiguration:
    def test_delays_validated(self):
        with pytest.raises(ConfigurationError):
            PeakFrequencyDetector(inverter_delay=0.0)
        with pytest.raises(ConfigurationError):
            PeakFrequencyDetector(and_gate_delay=-1e-9)


class TestSampling:
    def test_ref_leading_samples_one(self):
        det = PeakFrequencyDetector(inverter_delay=60e-9, and_gate_delay=5e-9)
        assert det.sample(cycle(1.0, +1e-4)) is True

    def test_ref_lagging_samples_zero(self):
        det = PeakFrequencyDetector(inverter_delay=60e-9, and_gate_delay=5e-9)
        assert det.sample(cycle(1.0, -1e-4)) is False

    def test_glitch_immunity(self):
        """The dead-zone glitch on DOWN must not read as 'lagging':
        the inverter out-delays the glitch (the paper's design rule)."""
        det = PeakFrequencyDetector(inverter_delay=60e-9, and_gate_delay=5e-9)
        # Ref leading by just more than the glitch width.
        assert det.sample(cycle(1.0, +50e-9)) is True

    def test_undersized_inverter_samples_the_glitch(self):
        """If the inverter does not out-delay the AND gate + glitch, the
        latch samples the dead-zone glitch itself and reads a *leading*
        reference as lagging — the failure mode Section 4 warns about."""
        bad = PeakFrequencyDetector(inverter_delay=1e-9, and_gate_delay=5e-9)
        # Ref leading: DOWN carries only the glitch, but the look-back
        # time lands inside it.
        assert bad.sample(cycle(1.0, +1e-4)) is False  # wrong answer
        good = PeakFrequencyDetector(inverter_delay=60e-9, and_gate_delay=5e-9)
        assert good.sample(cycle(1.0, +1e-4)) is True

    def test_coincident_reads_leading(self):
        det = PeakFrequencyDetector(inverter_delay=60e-9, and_gate_delay=5e-9)
        assert det.sample(cycle(1.0, 0.0)) is True


class TestEventGeneration:
    def test_max_event_on_lead_to_lag(self):
        det = PeakFrequencyDetector()
        det.on_cycle(cycle(1.0, +1e-4))
        ev = det.on_cycle(cycle(2.0, -1e-4))
        assert ev is not None
        assert ev.is_maximum
        assert ev.kind == "max"
        assert ev.time == pytest.approx(2.0 + 1e-4 + det.and_gate_delay)

    def test_min_event_on_lag_to_lead(self):
        det = PeakFrequencyDetector()
        det.on_cycle(cycle(1.0, -1e-4))
        ev = det.on_cycle(cycle(2.0, +1e-4))
        assert ev is not None
        assert not ev.is_maximum

    def test_no_event_without_transition(self):
        det = PeakFrequencyDetector()
        assert det.on_cycle(cycle(1.0, +1e-4)) is None
        assert det.on_cycle(cycle(2.0, +2e-4)) is None

    def test_first_cycle_never_fires(self):
        det = PeakFrequencyDetector()
        assert det.on_cycle(cycle(1.0, -1e-4)) is None

    def test_alternating_sequence(self):
        det = PeakFrequencyDetector()
        skews = [+1, +2, +1, -1, -2, -1, +1, +2]
        for k, s in enumerate(skews):
            det.on_cycle(cycle(float(k + 1), s * 1e-4))
        assert len(det.maxima()) == 1
        assert len(det.minima()) == 1
        assert det.cycles_seen == len(skews)

    def test_callback_fires_synchronously(self):
        seen = []
        det = PeakFrequencyDetector(on_event=seen.append)
        det.on_cycle(cycle(1.0, +1e-4))
        det.on_cycle(cycle(2.0, -1e-4))
        assert len(seen) == 1
        assert isinstance(seen[0], PeakEvent)

    def test_first_maximum_after(self):
        det = PeakFrequencyDetector()
        for k, s in enumerate([+1, -1, +1, -1]):
            det.on_cycle(cycle(float(k + 1), s * 1e-4))
        ev = det.first_maximum_after(1.5)
        assert ev is not None and ev.time > 1.5
        assert det.first_maximum_after(100.0) is None

    def test_reset_clears_everything(self):
        det = PeakFrequencyDetector()
        det.on_cycle(cycle(1.0, +1e-4))
        det.on_cycle(cycle(2.0, -1e-4))
        det.reset()
        assert det.q is None
        assert det.events == []
        assert det.cycles_seen == 0


class TestSinusoidalErrorPattern:
    def test_one_max_one_min_per_modulation_cycle(self):
        """A sinusoidal phase error produces exactly one MFREQ and one
        min event per cycle, at the error zero crossings."""
        det = PeakFrequencyDetector()
        f_ref, f_mod, n_cycles = 1000.0, 5.0, 3
        for k in range(int(n_cycles * f_ref / f_mod)):
            t = (k + 1) / f_ref
            skew = 1e-4 * math.sin(2 * math.pi * f_mod * t)
            if skew == 0.0:
                skew = 1e-12
            det.on_cycle(cycle(t, skew))
        assert len(det.maxima()) == n_cycles
        assert len(det.minima()) == n_cycles
        # Maxima at the + -> - crossings: t ~ k/f_mod + 1/(2 f_mod).
        for i, ev in enumerate(det.maxima()):
            expected = (i + 0.5) / f_mod
            assert ev.time == pytest.approx(expected, abs=2.0 / f_ref)
